//! The PD heatmap: profiled JCT comparison between PD-disaggregated and
//! PD-colocated TEs over (prefill length x decode/prefill ratio), and the
//! `select_tes_PD_heatmap` policy built on it (§5.3).
//!
//! Cell values follow the paper's convention: `JCT(colocated) /
//! JCT(disaggregated) - 1`. Positive means disaggregation wins. The
//! scheduler combines the per-RPS heatmaps by element-wise addition and
//! indexes the combined map with the request's prefill length and its
//! *predicted* decode length.

use serde::Serialize;

/// Log-spaced bucket edges for prefill length (tokens).
pub const PREFILL_EDGES: [usize; 7] = [256, 512, 1024, 2048, 4096, 8192, 16384];
/// Log-spaced bucket edges for decode/prefill ratio.
pub const RATIO_EDGES: [f64; 7] = [0.015625, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0];

/// Rows (prefill buckets) and columns (ratio buckets).
pub const ROWS: usize = PREFILL_EDGES.len();
/// Columns of the heatmap grid.
pub const COLS: usize = RATIO_EDGES.len();

/// One profiled heatmap (a single RPS level, or a combined map).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Heatmap {
    /// `cells[row][col]` = JCT(coloc)/JCT(disagg) - 1 at (prefill bucket,
    /// ratio bucket).
    pub cells: [[f64; COLS]; ROWS],
    /// Label, e.g. "rps=0.6" or "combined".
    pub label: String,
}

impl Heatmap {
    /// An all-zero map.
    pub fn zeros(label: impl Into<String>) -> Self {
        Heatmap {
            cells: [[0.0; COLS]; ROWS],
            label: label.into(),
        }
    }

    /// Bucket index for a prefill length (clamped to the grid).
    pub fn prefill_bucket(prefill_len: usize) -> usize {
        PREFILL_EDGES
            .iter()
            .position(|&e| prefill_len <= e)
            .unwrap_or(ROWS - 1)
    }

    /// Bucket index for a decode/prefill ratio (clamped to the grid).
    pub fn ratio_bucket(ratio: f64) -> usize {
        RATIO_EDGES
            .iter()
            .position(|&e| ratio <= e)
            .unwrap_or(COLS - 1)
    }

    /// Reads the cell for a request shape.
    pub fn lookup(&self, prefill_len: usize, decode_len: u32) -> f64 {
        let ratio = decode_len as f64 / prefill_len.max(1) as f64;
        self.cells[Self::prefill_bucket(prefill_len)][Self::ratio_bucket(ratio)]
    }

    /// Writes the cell at bucket coordinates.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.cells[row][col] = value;
    }

    /// Element-wise sum of per-RPS maps (§5.3.2 step one: "we combine the
    /// heat maps across all RPS values through element-wise addition").
    pub fn combine(maps: &[Heatmap]) -> Heatmap {
        let mut out = Heatmap::zeros("combined");
        for m in maps {
            for r in 0..ROWS {
                for c in 0..COLS {
                    out.cells[r][c] += m.cells[r][c];
                }
            }
        }
        out
    }

    /// Fraction of cells whose sign is consistent across all `maps`
    /// (the paper reports > 80% stability across RPS levels).
    pub fn sign_stability(maps: &[Heatmap]) -> f64 {
        if maps.is_empty() {
            return 1.0;
        }
        let mut stable = 0;
        for r in 0..ROWS {
            for c in 0..COLS {
                let signs: Vec<bool> = maps.iter().map(|m| m.cells[r][c] >= 0.0).collect();
                if signs.iter().all(|&s| s == signs[0]) {
                    stable += 1;
                }
            }
        }
        stable as f64 / (ROWS * COLS) as f64
    }

    /// The production default: an analytic stand-in for the profiled map,
    /// matching the paper's three observations — (1) disaggregation wins
    /// for long prefill + short decode and the win grows with prefill
    /// length, (2) wins (dark red) are larger than losses (light blue),
    /// (3) shape is RPS-stable. The Figure 5 bench *measures* this map
    /// from the simulator; this preset exists so the scheduler works
    /// before any profiling has run.
    pub fn default_production() -> Heatmap {
        let mut m = Heatmap::zeros("default-production");
        for r in 0..ROWS {
            for c in 0..COLS {
                // Long prefill (r up) pushes positive; long decode ratio
                // (c up) pushes negative; wins saturate higher than losses.
                let prefill_term = (r as f64 + 1.0) / ROWS as f64; // 0..1
                let ratio_term = (c as f64 + 1.0) / COLS as f64; // 0..1
                let raw = 0.9 * prefill_term - 0.75 * ratio_term + 0.1;
                m.cells[r][c] = if raw >= 0.0 { raw } else { raw * 0.35 };
            }
        }
        m
    }

    /// Renders the map as an ASCII table (for figure output).
    pub fn render(&self) -> String {
        let mut s = format!(
            "heatmap [{}]: rows=prefill, cols=decode/prefill\n",
            self.label
        );
        s.push_str("            ");
        for e in RATIO_EDGES {
            s.push_str(&format!("{e:>8.3}"));
        }
        s.push('\n');
        for (r, row) in self.cells.iter().enumerate() {
            s.push_str(&format!("{:>8}tok |", PREFILL_EDGES[r]));
            for v in row {
                s.push_str(&format!("{v:>8.2}"));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_clamp_and_order() {
        assert_eq!(Heatmap::prefill_bucket(1), 0);
        assert_eq!(Heatmap::prefill_bucket(256), 0);
        assert_eq!(Heatmap::prefill_bucket(257), 1);
        assert_eq!(Heatmap::prefill_bucket(1_000_000), ROWS - 1);
        assert_eq!(Heatmap::ratio_bucket(0.0), 0);
        assert_eq!(Heatmap::ratio_bucket(0.2), 4);
        assert_eq!(Heatmap::ratio_bucket(100.0), COLS - 1);
    }

    #[test]
    fn default_map_matches_paper_observations() {
        let m = Heatmap::default_production();
        // Observation 1: long prefill + short decode => disaggregated wins.
        assert!(m.lookup(8192, 64) > 0.0);
        // Short prefill + long decode => colocated wins.
        assert!(m.lookup(256, 512) < 0.0);
        // Advantage grows with prefill length at fixed ratio.
        assert!(m.lookup(16384, 1024) > m.lookup(1024, 64));
        // Observation 2: wins are larger than losses in magnitude.
        let max_win = m.cells.iter().flatten().copied().fold(f64::MIN, f64::max);
        let max_loss = m.cells.iter().flatten().copied().fold(f64::MAX, f64::min);
        assert!(max_win > max_loss.abs());
    }

    #[test]
    fn combine_is_elementwise_addition() {
        let mut a = Heatmap::zeros("a");
        let mut b = Heatmap::zeros("b");
        a.set(0, 0, 1.0);
        b.set(0, 0, 2.0);
        b.set(3, 4, -1.5);
        let c = Heatmap::combine(&[a, b]);
        assert_eq!(c.cells[0][0], 3.0);
        assert_eq!(c.cells[3][4], -1.5);
    }

    #[test]
    fn sign_stability_counts_consistent_cells() {
        let a = Heatmap::default_production();
        let mut b = a.clone();
        // Flip one cell's sign in b.
        b.cells[0][0] = -b.cells[0][0] - 0.1;
        let stability = Heatmap::sign_stability(&[a.clone(), b]);
        let expect = 1.0 - 1.0 / (ROWS * COLS) as f64;
        assert!((stability - expect).abs() < 1e-9);
        assert_eq!(Heatmap::sign_stability(&[a.clone(), a.clone()]), 1.0);
    }

    #[test]
    fn render_contains_all_rows() {
        let s = Heatmap::default_production().render();
        for e in PREFILL_EDGES {
            assert!(s.contains(&format!("{e}tok")));
        }
    }
}
