//! The serving-cluster simulation: Job Executors dispatching onto a pool of
//! FlowServe TEs over the NPU fabric.
//!
//! This is where everything composes (Figure 1): arrivals hit the JE's
//! distributed scheduler (Algorithm 1), colocated TEs serve whole requests,
//! disaggregated pairs run prefill then migrate KV over DistFlow/fabric to
//! the decode TE, populate transfers stream KV from host DRAM over each
//! TE's PCIe channel, and the JE's global prompt trees stay in sync with
//! TE-side cache insertions.

use crate::api::{ApiRequest, IngressRecord};
use crate::fleet::{ColdStartMode, FleetConfig, LoadState, ModelRegistry};
use crate::heatmap::Heatmap;
use crate::je::{Decision, JobExecutor, Policy, SchedPool, Target, TeSnapshot};
use crate::manager::{HealthConfig, HealthMonitor};
use crate::pool::{PoolMember, WorkerPool};
use crate::predictor::{DecodePredictor, FixedAccuracy, Oracle};
use crate::prompt_tree::TeId;
use crate::scaling::{LoadPath, ScalingModel, ScalingOptimizations, SourceLoad};
use flowserve::{
    BufferInfo, DistFlow, Engine, EngineConfig, EngineEvent, EngineMode, MemTier, NewRequest,
    Pacing, PopulateTicket, RequestId,
};
use llm_model::{Checkpoint, ExecCostModel, ModelSpec, Parallelism};
use npu::fabric::{Fabric, TransferId};
use npu::pagecache::{ByteRange, FileId};
use npu::specs::{ClusterSpec, NpuId};
use npu::storage::{fault_time, ServerStore, Tier};
use simcore::fault::{FaultEvent, FaultKind, FaultPlan};
use simcore::trace::{SpanId, Trace, TraceLevel, Tracer};
use simcore::{
    Clock, Counters, FifoChannel, LatencyStats, MetricsRegistry, SimDuration, SimTime,
    TimeMultiset, CLASS_ARRIVAL, CLASS_DEFAULT,
};
use std::collections::{BTreeMap, HashMap, HashSet};

// detlint note: the remaining HashMap/HashSet fields below are point-lookup
// only (insert/remove/get/contains) — never iterated, so hash order cannot
// leak into reports or traces. Anything iterated is a BTreeMap.

/// Role of one TE in the serving pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum TeRole {
    /// PD-colocated engine.
    Colocated,
    /// Prefill half of a disaggregated pair.
    Prefill,
    /// Decode half of a disaggregated pair.
    Decode,
}

/// A streaming notification surfaced to a live frontend (the gateway).
/// Purely additive observability: buffering these never changes scheduling,
/// stats, or counters, so a replay with live mode off is bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveEvent {
    /// First output token (prefill finished) for `id` at sim time `at`.
    FirstToken { id: RequestId, at: SimTime },
    /// `n` further output tokens for `id`, the last at sim time `at`.
    /// Emitted only when [`ClusterSim::set_token_events`] is on; a
    /// fast-forward window reports all absorbed iterations in one batch.
    Tokens { id: RequestId, at: SimTime, n: u32 },
    /// `id` finished; `output_tokens` counts the whole stream.
    Finished {
        id: RequestId,
        at: SimTime,
        output_tokens: u64,
    },
    /// `id` failed permanently (rejected, or recovery retries exhausted).
    Failed { id: RequestId, at: SimTime },
}

/// State for live (gateway-fed) ingress. See the "Serving façade" section
/// of DESIGN.md for the determinism contract this upholds.
struct LiveState {
    /// Every pending event time — a mirror of the queue, maintained by
    /// `sched`/`note_popped`. Live arrivals are bumped off any occupied
    /// instant so a (time, seq) tie can never order an arrival differently
    /// between the live run and its replay.
    pending: TimeMultiset,
    /// Most recent accepted arrival instant; live arrivals are strictly
    /// increasing so the replayed workload is sorted and collision-free.
    last_arrival: SimTime,
    /// The ingress log: every accepted submission with its final (bumped)
    /// arrival stamp. `inject`ing these into a fresh sim replays the live
    /// run bit-for-bit.
    ingress: Vec<IngressRecord>,
    /// Notifications buffered since the last `take_live_events`.
    events: Vec<LiveEvent>,
    /// Wall frontier while inside `step_until`: fast-forward may absorb
    /// iterations ending at or before this instant but never beyond it,
    /// and batch collection must not pop wakes past it.
    pace_limit: Option<SimTime>,
}

/// Cluster-simulation configuration.
pub struct ClusterConfig {
    /// Hardware.
    pub cluster: ClusterSpec,
    /// Model every TE serves.
    pub model: ModelSpec,
    /// Engine parallelism (the paper's serving tests use TP=4).
    pub parallelism: Parallelism,
    /// Engine template; `mode` is overridden per role.
    pub engine: EngineConfig,
    /// JE scheduling policy.
    pub policy: Policy,
    /// Decode-length predictor accuracy; `None` = oracle.
    pub predictor_accuracy: Option<f64>,
    /// PD heatmap for the PD-aware policy.
    pub heatmap: Heatmap,
    /// Fraction of a migrated KV transfer overlapped with prefill
    /// (by-layer streaming; 0.0 = pure by-req transfer after prefill).
    pub kv_transfer_overlap: f64,
    /// RNG seed (predictor noise).
    pub seed: u64,
}

impl ClusterConfig {
    /// The paper's standard serving testbed: a Gen2 cluster serving the
    /// internal 34B model at TP=4 with the combined policy.
    pub fn standard_34b() -> Self {
        ClusterConfig {
            cluster: ClusterSpec::gen2_cluster(4),
            model: ModelSpec::internal_34b(),
            parallelism: Parallelism::tp(4),
            engine: EngineConfig::colocated(),
            policy: Policy::Combined,
            predictor_accuracy: Some(0.9),
            heatmap: Heatmap::default_production(),
            kv_transfer_overlap: 0.8,
            seed: 42,
        }
    }
}

/// Detection and recovery knobs for fault-injected runs.
///
/// Only consulted once [`ClusterSim::install_faults`] arms the fault layer;
/// fault-free simulations never read these values, which keeps healthy runs
/// bit-identical to builds without the fault machinery.
#[derive(Debug, Clone, Copy)]
pub struct FaultRecoveryConfig {
    /// Heartbeat cadence and miss threshold for the cluster manager.
    pub health: HealthConfig,
    /// Re-dispatch attempts per request before it fails permanently.
    pub max_retries: u32,
    /// First re-dispatch backoff; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_cap: SimDuration,
    /// Fast-scaling optimizations applied when re-provisioning a dead TE
    /// (the 5-step pipeline decides the repair latency).
    pub repair: ScalingOptimizations,
}

impl Default for FaultRecoveryConfig {
    fn default() -> Self {
        FaultRecoveryConfig {
            health: HealthConfig::default(),
            max_retries: 5,
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_secs(2),
            repair: ScalingOptimizations::all(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(u32),
    Wake(TeId),
    /// Populate completion, guarded by the TE's engine epoch so transfers
    /// started before a crash cannot land on the replacement engine.
    Populate(TeId, u32, PopulateTicket),
    FabricAdvance,
    /// Injected fault (index into the installed plan's events).
    Fault(u32),
    /// Periodic cluster-manager heartbeat sweep.
    HealthCheck,
    /// Re-dispatch of a requeued or deferred request: `arrivals` slot
    /// index plus the slot generation at scheduling time. Terminal states
    /// free slots for reuse and bump the generation, so a stale redispatch
    /// self-invalidates instead of touching an unrelated request.
    Redispatch(u32, u32),
    /// A replacement TE comes online after the fast-scaling pipeline.
    RepairDone(TeId),
    /// A straggler slowdown window expires.
    StragglerEnd(TeId),
    /// Retry a KV migration that hit a transient DistFlow failure.
    MigrationRetry(RequestId),
    /// A fleet checkpoint load (cold start or scale-out) completes for
    /// model `m`.
    ModelReady(u32),
}

struct Te {
    id: TeId,
    role: TeRole,
    engine: Engine,
    npus: Vec<NpuId>,
    /// Host-DRAM -> HBM channel for populate transfers.
    pcie: FifoChannel,
    scheduled_wake: Option<SimTime>,
    /// False between a crash and the end of its repair.
    alive: bool,
    /// True once the health monitor has noticed the crash (the JE stops
    /// routing here) and until the repair completes.
    detected: bool,
    /// When the current outage started.
    failed_at: Option<SimTime>,
    /// Bumped whenever the engine is replaced; stale-epoch events no-op.
    epoch: u32,
    /// Busy time salvaged from engines discarded by earlier repairs.
    prior_busy: SimDuration,
}

/// One in-flight fleet checkpoint load.
struct InflightLoad {
    /// TEs receiving the model, each with the engine epoch at load start;
    /// a crash bumps the epoch and invalidates that target.
    targets: Vec<(TeId, u32)>,
    /// Deepest storage tier the load had to reach (labels SLA counters).
    tier: Tier,
    /// Covering trace span (NONE when tracing is off).
    span: SpanId,
}

/// Fleet mode: a model registry plus per-server storage tiers and per-TE
/// HBM residency. `None` keeps every single-model path byte-identical to
/// pre-fleet builds.
struct FleetState {
    registry: ModelRegistry,
    cfg: FleetConfig,
    /// One DRAM-over-SSD storage stack per physical server.
    stores: Vec<ServerStore>,
    /// Requests parked behind a load: model -> `(arrival slot, slot
    /// generation)`, FIFO. BTreeMap so any whole-map drain is
    /// deterministic; the generation invalidates entries whose request
    /// reached a terminal state while parked.
    waiting: BTreeMap<u32, Vec<(u32, u32)>>,
    /// In-flight loads by model (coalesces duplicate cold starts).
    inflight: BTreeMap<u32, InflightLoad>,
    /// HBM-resident models per TE in LRU order (front = coldest).
    resident: Vec<Vec<u32>>,
    /// Weight bytes pinned per TE.
    resident_bytes: Vec<u64>,
    /// Per-TE pinned-weight budget, bytes; exceeding it evicts LRU models.
    te_budget: u64,
}

struct Migration {
    new: NewRequest,
    from: TeId,
    to: TeId,
    kv_tokens: usize,
    first_token_at: SimTime,
    /// Trace span covering the transfer (NONE when tracing is off).
    span: SpanId,
}

/// Per-run results.
#[derive(Debug, Default)]
pub struct RunReport {
    /// End-to-end latency metrics across completed requests.
    pub latency: LatencyStats,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// Requests that failed permanently (retry budget exhausted or
    /// rejected); always zero in fault-free runs.
    pub failed: u64,
    /// Event counters.
    pub counters: Counters,
    /// Per-TE busy time (includes busy time salvaged from engines that
    /// were replaced by a repair).
    pub te_busy: Vec<(TeId, SimDuration)>,
    /// Merged sim-time trace (empty unless [`ClusterSim::enable_tracing`]
    /// was called). Components: `cluster`, `je`, `distflow`, `te<N>`, `rtc`.
    pub trace: Trace,
    /// Named metrics: counters from every component plus `cluster.ttft_ms`
    /// / `cluster.tpot_ms` / `cluster.jct_ms` samples and the
    /// `cluster.queue_depth` series.
    pub metrics: MetricsRegistry,
}

impl RunReport {
    /// Decode throughput over the makespan (tokens/s).
    pub fn throughput(&self) -> f64 {
        self.latency.decode_throughput(self.makespan)
    }

    /// Renders the report as a deterministic JSON value (the trace is
    /// excluded — compare it separately via `trace.to_json()`). Keys and
    /// counter entries come out in a fixed order, so two bit-identical runs
    /// produce byte-identical JSON.
    pub fn to_json(&mut self) -> serde::Value {
        use serde::{Serialize, Value};
        let counters: Vec<(String, Value)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        // `sim.events_processed` measures how the simulator executed (it
        // legitimately differs between fast-forward and single-stepping),
        // not what the simulation produced — keep it out of the
        // replay-comparable surface.
        let mut metrics = self.metrics.to_json();
        if let Value::Object(entries) = &mut metrics {
            entries.retain(|(k, _)| k != "sim.events_processed");
        }
        Value::Object(vec![
            ("completed".to_string(), self.latency.completed().to_value()),
            ("failed".to_string(), self.failed.to_value()),
            (
                "makespan_ns".to_string(),
                self.makespan.as_nanos().to_value(),
            ),
            ("ttft_ms".to_string(), self.latency.ttft_ms().to_value()),
            ("tpot_ms".to_string(), self.latency.tpot_ms().to_value()),
            ("jct_ms".to_string(), self.latency.jct_ms().to_value()),
            ("counters".to_string(), Value::Object(counters)),
            ("metrics".to_string(), metrics),
        ])
    }
}

/// Worker-thread default for parallel cluster stepping: the
/// `DEEPSERVE_THREADS` environment variable if set to a positive integer,
/// else 1 (sequential). This is the single place the env var is read;
/// every [`ClusterSim`] starts from it and [`ClusterSim::set_threads`]
/// overrides per instance. Results are bit-identical at any thread count —
/// the knob only trades wall-clock for cores.
///
/// # Panics
///
/// Panics with a diagnostic if `DEEPSERVE_THREADS` is set to anything but
/// a positive integer (see [`parse_threads`]). A typo like
/// `DEEPSERVE_THREADS=fourr` or `=0` used to be silently swallowed into a
/// single-threaded run — a config error must fail loudly at startup, not
/// quietly misattribute every benchmark number.
pub fn default_threads() -> usize {
    let Ok(raw) = std::env::var("DEEPSERVE_THREADS") else {
        return 1;
    };
    match parse_threads(&raw) {
        Ok(n) => n,
        // detlint: allow(panic) — operator configuration boundary: an unparseable DEEPSERVE_THREADS must abort startup with a diagnostic, not silently degrade to single-threaded
        Err(msg) => panic!("{msg}"),
    }
}

/// Parses a `DEEPSERVE_THREADS` value. Empty or all-whitespace input is
/// treated as unset (1 = sequential); anything else must be a positive
/// integer. Split out of [`default_threads`] so the rejection paths are
/// testable without mutating process-global environment state.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    let t = raw.trim();
    if t.is_empty() {
        return Ok(1);
    }
    match t.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "DEEPSERVE_THREADS must be a positive integer (worker threads \
             for parallel stepping; results are bit-identical at any \
             count), got {raw:?}"
        )),
    }
}

/// The serving cluster.
pub struct ClusterSim {
    cfg: ClusterConfig,
    clock: Clock<Event>,
    fabric: Fabric,
    fabric_wake: Option<SimTime>,
    tes: Vec<Te>,
    pairs: Vec<(TeId, TeId)>,
    je: JobExecutor,
    /// In-flight request store: slot-addressed, recycled LIFO once a
    /// request reaches a terminal state. `None` = free slot. Memory is
    /// O(peak in-flight), not O(total injected) — the streaming path
    /// relies on this to run million-request workloads flat.
    arrivals: Vec<Option<ApiRequest>>,
    /// Free `arrivals` slots, reused LIFO (a pure function of the
    /// inject/terminal history, so replays are bit-identical).
    free_slots: Vec<u32>,
    /// Per-slot generation, bumped when the slot is freed; stale
    /// `Redispatch`/fleet-waiter references check it before acting.
    slot_gen: Vec<u32>,
    /// Total requests accepted (injected, streamed, or submitted live);
    /// replaces `arrivals.len()` for completion accounting now that
    /// slots recycle.
    injected_total: u64,
    /// Lazily-pulled workload stream (`inject_stream`). Exactly one
    /// pending `Arrival` is materialized at a time; `None` once drained.
    stream: Option<Box<dyn Iterator<Item = ApiRequest> + Send>>,
    /// Last streamed arrival stamp (sortedness check).
    stream_last_arrival: SimTime,
    /// Disaggregated routing: request -> decode TE.
    decode_route: HashMap<RequestId, TeId>,
    /// Prompt + metadata stash for requests in the prefill half.
    pending_migration: HashMap<RequestId, NewRequest>,
    /// In-flight KV migrations. A `BTreeMap`: crash handling iterates it
    /// to find doomed transfers, in id order by construction.
    in_flight_migrations: BTreeMap<TransferId, Migration>,
    latency: LatencyStats,
    counters: Counters,
    first_arrival: Option<SimTime>,
    last_completion: SimTime,
    completed: u64,
    submitted: u64,
    /// KV-transfer planning layer; linked over the TE head NPUs.
    distflow: DistFlow,
    tracer: Tracer,
    metrics: MetricsRegistry,
    /// Drive quiescent decode engines with [`Pacing::FastForward`]
    /// (macro-stepping). On by default; outcome is bit-identical either
    /// way, only event counts and wall-clock change.
    fast_forward: bool,
    /// Multiset of pending *horizon-bounding* event times (everything but
    /// non-prefill `Wake`s). The earliest entry is the horizon handed to
    /// fast-forwarding engines: no absorption at or past it.
    horizon_times: TimeMultiset,
    /// Worker threads for parallel stepping (1 = classic sequential loop).
    /// Outcome is bit-identical at any count; only wall-clock changes.
    threads: usize,
    /// Livelock guard: `run_to_completion` panics after this many events.
    event_budget: u64,
    /// Events processed across all `run_to_completion` calls.
    events_processed: u64,
    /// Reused engine-event buffer for `on_wake`.
    events_scratch: Vec<EngineEvent>,
    /// Reused wake-batch buffer for `step_wake_batch`:
    /// `(due time, TE, passed the wake gate)`.
    batch_scratch: Vec<(SimTime, TeId, bool)>,
    /// Reused per-TE membership flags for batch collection.
    batch_member: Vec<bool>,
    /// Recycled engine-event buffers handed to batch workers.
    wake_buf_pool: Vec<Vec<EngineEvent>>,
    /// Persistent worker pool for parallel stepping. Created when
    /// `threads > 1` (eagerly by `set_threads`, lazily on the first
    /// parallel wave when the env default selects multi-threading), torn
    /// down and rebuilt on reconfigure, dropped with the sim. `None`
    /// while single-threaded.
    pool: Option<WorkerPool>,
    /// Recycled placeholder engines: swapped into a TE slot while its
    /// real engine is out in the pool for a wave. Zero-KV config — they
    /// are never stepped, only parked.
    spare_engines: Vec<Engine>,
    /// Reused member buffer for pool dispatch.
    pool_members: Vec<PoolMember>,
    /// Let prefill wakes join parallel windows under a conservative
    /// KV-migration fence (see `prefill_fence`). On by default; ignored
    /// while the fault layer is armed.
    wide_windows: bool,
    /// Reused `(request, kv_tokens)` buffer for `prefill_fence`.
    fence_scratch: Vec<(RequestId, usize)>,
    /// Reused per-wave buffer list for `step_wake_batch`.
    wave_bufs: Vec<Vec<EngineEvent>>,
    /// Parallel-stepping telemetry: batches executed, members advanced,
    /// prefill members advanced. Execution-strategy metadata, kept out
    /// of the replay-comparable report surface (see `exec_stats`).
    exec_batches: u64,
    exec_members: u64,
    exec_prefill_members: u64,
    /// Wake events forced through the sequential path (prefill wakes
    /// under narrow windows or fault layers) — each is effectively a
    /// width-1 window for width accounting, at any thread count.
    exec_seq_wakes: u64,
    // --- fault layer (inert until `install_faults`) ---
    fault_cfg: FaultRecoveryConfig,
    fault_events: Vec<FaultEvent>,
    health: Option<HealthMonitor>,
    /// Active link degradation: `(bandwidth factor, expiry)`.
    link_degrade: Option<(f64, SimTime)>,
    /// KV transfers started before this instant fail once.
    flaky_until: Option<SimTime>,
    /// Requests that already consumed their one transient transfer failure.
    flaked: HashSet<RequestId>,
    /// Stash for flaked migrations awaiting retry: `(from, kv_tokens,
    /// first_token_at)`.
    migration_retry: HashMap<RequestId, (TeId, usize, SimTime)>,
    /// Re-dispatch attempts per request.
    retries: HashMap<RequestId, u32>,
    failed: u64,
    repairs_pending: u32,
    /// Request id -> `arrivals` slot, for re-dispatch and prompt lookup.
    /// Presence here *is* liveness: a terminal state removes the entry
    /// (and frees the slot), so "not indexed" means "finished or failed".
    arrival_index: HashMap<RequestId, u32>,
    /// Traces salvaged from engines replaced by repairs.
    salvaged_traces: Vec<(String, Trace)>,
    /// Counters salvaged from engines replaced by repairs.
    salvaged_counters: Counters,
    /// Tracing config, replayed onto replacement engines.
    trace_cfg: Option<(TraceLevel, usize)>,
    /// Model-fleet state; `None` outside fleet mode.
    fleet: Option<FleetState>,
    /// Live (gateway-fed) ingress state; `None` for offline trace replay.
    live: Option<LiveState>,
    /// Whether engines emit per-iteration `Tokens` events (replayed onto
    /// replacement engines after a repair).
    token_events: bool,
}

impl ClusterSim {
    /// Builds a cluster with the given TE roles placed round-robin across
    /// servers (`world_size` NPUs each, packed per server).
    ///
    /// # Panics
    ///
    /// Panics if the hardware cannot host all TEs, or if prefill/decode
    /// roles are unpaired.
    pub fn new(cfg: ClusterConfig, roles: &[TeRole]) -> Self {
        let world = cfg.parallelism.world_size() as usize;
        let per_server = cfg.cluster.server.chips_per_server / world;
        assert!(per_server >= 1, "one TE needs {world} NPUs per server");
        let capacity = cfg.cluster.num_servers * per_server;
        assert!(
            roles.len() <= capacity,
            "cluster fits {capacity} TEs, asked for {}",
            roles.len()
        );

        let mut tes = Vec::new();
        for (i, &role) in roles.iter().enumerate() {
            let server = i / per_server;
            let first_chip = (i % per_server) * world;
            let npus: Vec<NpuId> = (0..world)
                .map(|k| NpuId::new(server, first_chip + k))
                .collect();
            tes.push(Te {
                id: TeId(i as u32),
                role,
                engine: Self::build_engine(&cfg, role),
                npus,
                pcie: FifoChannel::new(
                    cfg.cluster.server.pcie_bw_per_npu(world.min(8)) * world as f64,
                    SimDuration::from_micros(100),
                ),
                scheduled_wake: None,
                alive: true,
                detected: false,
                failed_at: None,
                epoch: 0,
                prior_busy: SimDuration::ZERO,
            });
        }

        // Pair prefill and decode TEs in order of appearance; a decode TE
        // may back several prefill TEs (the paper's 2P1D setup).
        let prefills: Vec<TeId> = tes
            .iter()
            .filter(|t| t.role == TeRole::Prefill)
            .map(|t| t.id)
            .collect();
        let decodes: Vec<TeId> = tes
            .iter()
            .filter(|t| t.role == TeRole::Decode)
            .map(|t| t.id)
            .collect();
        assert!(
            prefills.is_empty() == decodes.is_empty(),
            "prefill TEs require decode TEs and vice versa"
        );
        let pairs: Vec<(TeId, TeId)> = prefills
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, decodes[i % decodes.len()]))
            .collect();

        let predictor: Box<dyn DecodePredictor> = match cfg.predictor_accuracy {
            None => Box::new(Oracle),
            Some(a) => Box::new(FixedAccuracy::new(a, cfg.seed ^ 0x9e37)),
        };
        let je = JobExecutor::new(
            cfg.policy,
            cfg.heatmap.clone(),
            predictor,
            cfg.engine.block_size,
        );
        let fabric = Fabric::new(cfg.cluster.clone());
        // DistFlow control plane: link every TE's head NPU with every other
        // (the paper's LinkCluster over the serving pool).
        let mut distflow = DistFlow::new(
            cfg.cluster.server.chip.generation == npu::specs::Generation::Gen3SuperPod,
        );
        let heads: Vec<NpuId> = tes.iter().map(|t| t.npus[0]).collect();
        distflow.link_cluster(&heads);
        ClusterSim {
            cfg,
            clock: Clock::new(),
            fabric,
            fabric_wake: None,
            tes,
            pairs,
            je,
            arrivals: Vec::new(),
            free_slots: Vec::new(),
            slot_gen: Vec::new(),
            injected_total: 0,
            stream: None,
            stream_last_arrival: SimTime::ZERO,
            decode_route: HashMap::new(),
            pending_migration: HashMap::new(),
            in_flight_migrations: BTreeMap::new(),
            latency: LatencyStats::new(),
            counters: Counters::new(),
            first_arrival: None,
            last_completion: SimTime::ZERO,
            completed: 0,
            submitted: 0,
            distflow,
            tracer: Tracer::disabled(),
            metrics: MetricsRegistry::new(),
            fast_forward: true,
            horizon_times: TimeMultiset::new(),
            threads: default_threads(),
            event_budget: 200_000_000,
            events_processed: 0,
            events_scratch: Vec::new(),
            batch_scratch: Vec::new(),
            batch_member: Vec::new(),
            wake_buf_pool: Vec::new(),
            pool: None,
            spare_engines: Vec::new(),
            pool_members: Vec::new(),
            wide_windows: true,
            fence_scratch: Vec::new(),
            wave_bufs: Vec::new(),
            exec_batches: 0,
            exec_members: 0,
            exec_prefill_members: 0,
            exec_seq_wakes: 0,
            fault_cfg: FaultRecoveryConfig::default(),
            fault_events: Vec::new(),
            health: None,
            link_degrade: None,
            flaky_until: None,
            flaked: HashSet::new(),
            migration_retry: HashMap::new(),
            retries: HashMap::new(),
            failed: 0,
            repairs_pending: 0,
            arrival_index: HashMap::new(),
            salvaged_traces: Vec::new(),
            salvaged_counters: Counters::new(),
            trace_cfg: None,
            fleet: None,
            live: None,
            token_events: false,
        }
    }

    /// Builds one TE's engine from the cluster config; also used to stand up
    /// a fresh engine (empty KV, empty RTC) when a repair replaces a dead TE.
    fn build_engine(cfg: &ClusterConfig, role: TeRole) -> Engine {
        let mode = match role {
            TeRole::Colocated => EngineMode::Colocated,
            TeRole::Prefill => EngineMode::PrefillOnly,
            TeRole::Decode => EngineMode::DecodeOnly,
        };
        let engine_cfg = EngineConfig {
            mode,
            prefill_chunk_tokens: if role == TeRole::Prefill {
                4096
            } else {
                cfg.engine.prefill_chunk_tokens
            },
            ..cfg.engine.clone()
        };
        let cost = ExecCostModel::new(
            cfg.cluster.server.chip.clone(),
            cfg.cluster.hccs,
            cfg.model.clone(),
            cfg.parallelism,
        );
        Engine::new(engine_cfg, cost)
    }

    /// Turns on sim-time tracing across the whole cluster: the sim itself,
    /// the JE's scheduling decisions, DistFlow transfer plans, and every
    /// TE's engine + RTC. `capacity` bounds each component's span and event
    /// ring buffers.
    pub fn enable_tracing(&mut self, level: TraceLevel, capacity: usize) {
        self.trace_cfg = Some((level, capacity));
        self.tracer = Tracer::enabled(level, capacity);
        self.je.enable_tracing(level, capacity);
        self.distflow.enable_tracing(level, capacity);
        for te in &mut self.tes {
            te.engine.enable_tracing(level, capacity);
        }
    }

    /// The TE roles in play.
    pub fn roles(&self) -> Vec<(TeId, TeRole)> {
        self.tes.iter().map(|t| (t.id, t.role)).collect()
    }

    /// Disables (or re-enables) decode fast-forward. Single-stepping is the
    /// reference execution; fast-forward must match it bit-for-bit, so this
    /// switch exists for A/B verification and benchmarking, not for
    /// correctness.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Sets the worker-thread count for parallel stepping (clamped to at
    /// least 1 = the classic sequential loop). Like fast-forward, this is a
    /// pure execution-strategy knob: reports and traces are bit-identical
    /// at every thread count, so any value is safe anywhere — including
    /// mid-run: the persistent pool for the old count is torn down (queue
    /// closed, workers joined) and a fresh one stood up, and the next wave
    /// dispatches into it with no state carried over.
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
        // Reconfigure the persistent pool generation eagerly: dropping the
        // old pool closes its queue and joins its workers.
        self.pool = None;
        if self.threads > 1 {
            self.pool = Some(WorkerPool::new(self.threads));
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables/disables wide parallel windows: prefill wakes joining
    /// parallel batches under the conservative KV-migration fence of
    /// `prefill_fence`. On by default; runs with the fault layer armed
    /// ignore it (the fence's undegraded transfer estimates assume a
    /// healthy fabric). Like fast-forward and threads, a pure
    /// execution-strategy knob: reports are bit-identical either way.
    pub fn set_wide_windows(&mut self, on: bool) {
        self.wide_windows = on;
    }

    /// Parallel-stepping telemetry across all batches so far: `(batches,
    /// members advanced, prefill members advanced, sequentially-stepped
    /// wakes)`. Windows are collected at every thread count (a
    /// `threads: 1` run reports the same widths it *would* parallelize),
    /// so width comparisons never require a threads≥2 run. The last
    /// component counts wake events that bypassed the window (prefill
    /// wakes under narrow windows or fault layers) — each is a forced
    /// width-1 step, so the effective mean window width is
    /// `(members + seq) / (batches + seq)`. Execution-strategy metadata
    /// like `sim.events_processed`, deliberately kept out of the
    /// replay-comparable report surface.
    pub fn exec_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.exec_batches,
            self.exec_members,
            self.exec_prefill_members,
            self.exec_seq_wakes,
        )
    }

    /// Replaces the default 200M-event livelock budget for
    /// [`ClusterSim::run_to_completion`].
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Events processed so far across `run_to_completion` calls (also
    /// surfaced as the `sim.events_processed` counter metric).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Whether `ev` bounds the fast-forward horizon. Everything external
    /// can mutate an engine mid-window (arrivals, populates, fabric
    /// completions, faults, repairs, health sweeps) — except non-prefill
    /// `Wake`s, whose handlers only progress their own engine and emit
    /// events that never touch another TE. Prefill wakes stay bounding:
    /// a completed prefill starts a KV migration toward a decode TE.
    fn bounds_horizon(&self, ev: Event) -> bool {
        match ev {
            Event::Wake(te) => self.tes[te.0 as usize].role == TeRole::Prefill,
            _ => true,
        }
    }

    /// Schedules `ev`, recording horizon-bounding times in the multiset
    /// consulted by fast-forwarding engines. All event scheduling must go
    /// through here (not `clock.schedule`) or fast-forward could absorb
    /// past an unrecorded interaction.
    fn sched(&mut self, at: SimTime, ev: Event) {
        if self.bounds_horizon(ev) {
            self.horizon_times.insert(at);
        }
        if let Some(live) = &mut self.live {
            live.pending.insert(at);
        }
        // Shard the queue by producer: each TE's wakes (the bulk of all
        // traffic) go to a private sub-queue, everything else to shard 0.
        // Pop order is identical to a single queue — sharding only splits
        // the heaps. Arrivals carry the arrival class so a streamed
        // arrival scheduled late (one-lookahead) still wins same-instant
        // ties exactly like its materialized twin with a globally-early
        // sequence number would.
        let (shard, class) = match ev {
            Event::Wake(te) => (te.0 as usize + 1, CLASS_DEFAULT),
            Event::Arrival(_) => (0, CLASS_ARRIVAL),
            _ => (0, CLASS_DEFAULT),
        };
        self.clock.schedule_sharded(at, shard, class, ev);
    }

    /// Bookkeeping for a popped event: drops its horizon-bounding entry
    /// (and, in live mode, its all-pending-times mirror entry). Every pop
    /// (main loop, batch collection, merge drain) must pair with this or
    /// the horizon would stay pinned at a past instant.
    fn note_popped(&mut self, now: SimTime, ev: Event) {
        if self.bounds_horizon(ev) {
            self.horizon_times.remove(now);
        }
        if let Some(live) = &mut self.live {
            live.pending.remove(now);
        }
    }

    /// Queues a workload (arrivals must be time-sorted).
    ///
    /// # Panics
    ///
    /// Panics if arrivals are out of order.
    pub fn inject(&mut self, requests: Vec<ApiRequest>) {
        assert!(
            self.stream.is_none(),
            "inject and inject_stream are mutually exclusive"
        );
        let mut last = SimTime::ZERO;
        for r in &requests {
            assert!(r.arrival >= last, "arrivals must be sorted by time");
            last = r.arrival;
        }
        for r in requests {
            let at = r.arrival;
            let idx = self.alloc_slot(r);
            self.sched(at, Event::Arrival(idx));
        }
    }

    /// Queues a lazily generated workload. The stream is pulled with
    /// one-arrival lookahead: exactly one materialized arrival is pending
    /// at any instant, and handling it pulls (and schedules) its successor
    /// *before* dispatching — the successor is therefore queued during the
    /// dispatch exactly as a fully materialized [`ClusterSim::inject`]
    /// would have it, so the run is bit-identical while holding
    /// O(in-flight) request state instead of O(total).
    ///
    /// # Panics
    ///
    /// Panics if a workload was already injected or streamed, or in live
    /// mode; panics lazily (on pull) if the stream's arrivals are
    /// unsorted.
    pub fn inject_stream(&mut self, stream: impl Iterator<Item = ApiRequest> + Send + 'static) {
        assert!(
            self.stream.is_none() && self.arrivals.is_empty() && self.live.is_none(),
            "inject_stream requires a fresh offline sim"
        );
        self.stream = Some(Box::new(stream));
        self.pull_next_stream();
    }

    /// Materializes and schedules the next streamed arrival, if any;
    /// drops the exhausted stream so completion accounting can settle.
    fn pull_next_stream(&mut self) {
        let Some(stream) = self.stream.as_mut() else {
            return;
        };
        let Some(r) = stream.next() else {
            self.stream = None;
            return;
        };
        assert!(
            r.arrival >= self.stream_last_arrival,
            "streamed arrivals must be sorted by time"
        );
        self.stream_last_arrival = r.arrival;
        let at = r.arrival;
        let idx = self.alloc_slot(r);
        self.sched(at, Event::Arrival(idx));
    }

    /// Stores one accepted request in a reusable arrival slot and indexes
    /// it by id. Slots recycle LIFO — a pure function of the
    /// inject/terminal history, so replays are bit-identical.
    fn alloc_slot(&mut self, r: ApiRequest) -> u32 {
        let id = r.id;
        let idx = match self.free_slots.pop() {
            Some(i) => {
                debug_assert!(self.arrivals[i as usize].is_none());
                self.arrivals[i as usize] = Some(r);
                i
            }
            None => {
                self.arrivals.push(Some(r));
                self.slot_gen.push(0);
                (self.arrivals.len() - 1) as u32
            }
        };
        let prev = self.arrival_index.insert(id, idx);
        debug_assert!(prev.is_none(), "duplicate request id {id:?}");
        self.injected_total += 1;
        idx
    }

    /// Retires `id`: frees its arrival slot for reuse (bumping the slot
    /// generation so stale `Redispatch`s and fleet waiters self-invalidate)
    /// and drops it from the index. Returns false when already terminal.
    fn mark_terminal(&mut self, id: RequestId) -> bool {
        let Some(idx) = self.arrival_index.remove(&id) else {
            return false;
        };
        self.arrivals[idx as usize] = None;
        self.slot_gen[idx as usize] = self.slot_gen[idx as usize].wrapping_add(1);
        self.free_slots.push(idx);
        true
    }

    /// Switches the sim into live-ingress mode: requests arrive one at a
    /// time via [`ClusterSim::submit_live`], time advances in bounded
    /// slices via [`ClusterSim::step_until`], and every accepted
    /// submission is appended to a replayable ingress log.
    ///
    /// # Panics
    ///
    /// Panics if anything was already scheduled or injected — the live
    /// pending-times mirror must observe every event from the start.
    pub fn enable_live_ingress(&mut self) {
        assert!(
            self.clock.peek_time().is_none() && self.arrivals.is_empty(),
            "enable_live_ingress must be called on a fresh sim"
        );
        self.live = Some(LiveState {
            pending: TimeMultiset::new(),
            last_arrival: SimTime::ZERO,
            ingress: Vec::new(),
            events: Vec::new(),
            pace_limit: None,
        });
    }

    /// Submits one live request. `req.arrival` is the caller's wall-clock
    /// mapping of "now" in sim time; the sim may move it later — never
    /// earlier — so that arrivals are strictly increasing, strictly after
    /// the current instant, and never collide with any pending event time
    /// (a (time, seq) tie could order live and replay runs differently).
    /// Returns the final arrival stamp, which is what the ingress log
    /// records and what a replay will use verbatim.
    ///
    /// # Panics
    ///
    /// Panics without [`ClusterSim::enable_live_ingress`], or on a
    /// duplicate request id.
    pub fn submit_live(&mut self, mut req: ApiRequest) -> SimTime {
        assert!(
            self.live.is_some(),
            "submit_live requires enable_live_ingress()"
        );
        assert!(
            !self.arrival_index.contains_key(&req.id),
            "duplicate live request id {:?}",
            req.id
        );
        let one = SimDuration::from_nanos(1);
        let floor = self.clock.now() + one;
        let at = {
            let Some(live) = self.live.as_mut() else {
                unreachable!("asserted above");
            };
            let mut at = req.arrival.max_of(floor).max_of(live.last_arrival + one);
            while live.pending.contains(at) {
                at += one;
            }
            live.last_arrival = at;
            req.arrival = at;
            live.ingress.push(IngressRecord::from_request(&req));
            at
        };
        let idx = self.alloc_slot(req);
        self.sched(at, Event::Arrival(idx));
        at
    }

    /// Processes every event due at or before `limit`, then stops; the
    /// queue keeps everything later. Fast-forward absorption and parallel
    /// batch collection are clamped to `limit` for the duration, so the
    /// execution is the same event-for-event prefix the unclamped run
    /// would produce. Returns the next pending event time, if any — the
    /// caller's cue for how long to sleep.
    ///
    /// # Panics
    ///
    /// Panics if the cumulative event budget is exceeded (livelock guard),
    /// like [`ClusterSim::run_to_completion`].
    pub fn step_until(&mut self, limit: SimTime) -> Option<SimTime> {
        if let Some(live) = &mut self.live {
            live.pace_limit = Some(limit);
        }
        let mut processed: u64 = 0;
        while self.clock.peek_time().is_some_and(|t| t <= limit) {
            let Some((now, ev)) = self.clock.next() else {
                break; // unreachable: peek_time above returned Some
            };
            self.note_popped(now, ev);
            processed += match ev {
                Event::Wake(te)
                    if self.tes[te.0 as usize].role != TeRole::Prefill
                        || (self.wide_windows && self.health.is_none()) =>
                {
                    self.step_wake_batch(now, te)
                }
                _ => {
                    if matches!(ev, Event::Wake(_)) {
                        self.exec_seq_wakes += 1;
                    }
                    self.handle(now, ev);
                    1
                }
            };
            assert!(
                self.events_processed + processed < self.event_budget,
                "cluster sim exceeded event budget (livelock?)"
            );
        }
        if let Some(live) = &mut self.live {
            live.pace_limit = None;
        }
        self.events_processed += processed;
        let id = self.metrics.counter("sim.events_processed");
        self.metrics.add(id, processed);
        self.clock.peek_time()
    }

    /// The earliest pending event time (the live loop's sleep target).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.clock.peek_time()
    }

    /// Drains the live notifications buffered since the last call.
    /// Empty (and free) outside live mode.
    pub fn take_live_events(&mut self) -> Vec<LiveEvent> {
        self.live
            .as_mut()
            .map(|l| std::mem::take(&mut l.events))
            .unwrap_or_default()
    }

    /// The ingress log so far: every accepted live submission with its
    /// final arrival stamp, in arrival order. Empty outside live mode.
    pub fn ingress_log(&self) -> &[IngressRecord] {
        self.live.as_ref().map_or(&[], |l| l.ingress.as_slice())
    }

    /// Turns per-iteration token notifications on for every engine
    /// (surfaced as [`LiveEvent::Tokens`]; replacement engines provisioned
    /// by repairs inherit the setting). Purely additive: reports stay
    /// bit-identical either way.
    pub fn set_token_events(&mut self, on: bool) {
        self.token_events = on;
        for te in &mut self.tes {
            te.engine.set_token_events(on);
        }
    }

    /// A point-in-time JSON snapshot of the metrics registry with every
    /// component's counters folded in — the `/metrics` endpoint. Works on
    /// a clone: `Summary` computation sorts sample values in place, and
    /// perturbing the registry's internal order mid-run would break the
    /// live-vs-replay byte identity of the final report.
    pub fn metrics_snapshot_json(&self) -> serde::Value {
        let mut snap = self.metrics.clone();
        snap.import_counters(&self.counters);
        snap.import_counters(self.je.counters());
        snap.import_counters(self.distflow.counters());
        snap.import_counters(&self.salvaged_counters);
        for te in &self.tes {
            snap.import_counters(te.engine.counters());
            snap.import_counters(te.engine.rtc().counters());
        }
        snap.to_json()
    }

    /// Arms the fault layer: schedules every event in `plan` into the
    /// deterministic queue and starts cluster-manager health monitoring.
    /// A run is then replayable bit-for-bit from `(workload, plan, cfg)`.
    ///
    /// An empty plan is a guaranteed no-op — nothing is scheduled, no
    /// health monitoring starts, and the run stays bit-identical to one
    /// that never called this method. Call after [`ClusterSim::inject`]
    /// and before [`ClusterSim::run_to_completion`].
    ///
    /// # Panics
    ///
    /// Panics if the plan names a TE index outside the pool.
    pub fn install_faults(&mut self, plan: &FaultPlan, cfg: FaultRecoveryConfig) {
        if plan.is_empty() {
            return;
        }
        if let Some(max) = plan.max_te() {
            assert!(
                (max as usize) < self.tes.len(),
                "fault plan names TE {max}, but the pool has {} TEs",
                self.tes.len()
            );
        }
        self.fault_cfg = cfg;
        self.fault_events = plan.events.clone();
        for i in 0..self.fault_events.len() {
            let at = self.fault_events[i].at;
            self.sched(at, Event::Fault(i as u32));
        }
        let mut health = HealthMonitor::new(cfg.health);
        for te in &self.tes {
            health.register(te.id, SimTime::ZERO);
        }
        let first = SimTime::ZERO + cfg.health.heartbeat_interval;
        self.health = Some(health);
        self.sched(first, Event::HealthCheck);
    }

    /// Runs until all injected requests complete (or nothing can progress).
    ///
    /// # Panics
    ///
    /// Panics if more than the configured event budget
    /// ([`ClusterSim::set_event_budget`], default 200M) is processed —
    /// almost certainly a livelock.
    pub fn run_to_completion(&mut self) -> RunReport {
        let mut processed: u64 = 0;
        while let Some((now, ev)) = self.clock.next() {
            self.note_popped(now, ev);
            processed += match ev {
                // Parallel stepping: a wake at the queue head may lead a
                // batch of independent engine advances (collected at any
                // thread count, so window-width telemetry is populated on
                // `threads: 1` runs too; execution is sequential there).
                // Prefill wakes participate only under wide windows
                // (fault-free runs) — their KV migrations are bounded by
                // a conservative fence.
                Event::Wake(te)
                    if self.tes[te.0 as usize].role != TeRole::Prefill
                        || (self.wide_windows && self.health.is_none()) =>
                {
                    self.step_wake_batch(now, te)
                }
                _ => {
                    if matches!(ev, Event::Wake(_)) {
                        self.exec_seq_wakes += 1;
                    }
                    self.handle(now, ev);
                    1
                }
            };
            assert!(
                processed < self.event_budget,
                "cluster sim exceeded event budget (livelock?)"
            );
        }
        self.events_processed += processed;
        // Meta-metric: measures simulator execution, not simulated outcome.
        // `RunReport::to_json` filters it so fast-forward stays
        // bit-comparable against single-stepping.
        let id = self.metrics.counter("sim.events_processed");
        self.metrics.add(id, processed);
        self.report()
    }

    fn report(&mut self) -> RunReport {
        let start = self.first_arrival.unwrap_or(SimTime::ZERO);
        let makespan = self.last_completion.since(start.min(self.last_completion));
        let mut latency = LatencyStats::new();
        std::mem::swap(&mut latency, &mut self.latency);

        // Merge every component's trace into one timeline.
        let mut trace = Trace::default();
        trace.absorb("cluster", self.tracer.take());
        trace.absorb("je", self.je.take_trace());
        trace.absorb("distflow", self.distflow.take_trace());
        // Traces salvaged from engines that a repair replaced, under the
        // same `te<N>` component as the replacement so one TE slot reads
        // as one timeline.
        for (component, t) in std::mem::take(&mut self.salvaged_traces) {
            trace.absorb(&component, t);
        }
        for i in 0..self.tes.len() {
            let component = format!("te{i}");
            let t = self.tes[i].engine.take_trace();
            trace.absorb(&component, t);
        }

        // Fold all counters into the registry (values accumulate across
        // report() calls on the same sim, matching Counters semantics).
        let mut metrics = std::mem::take(&mut self.metrics);
        metrics.import_counters(&self.counters);
        metrics.import_counters(self.je.counters());
        metrics.import_counters(self.distflow.counters());
        metrics.import_counters(&self.salvaged_counters);
        for te in &self.tes {
            metrics.import_counters(te.engine.counters());
            metrics.import_counters(te.engine.rtc().counters());
        }
        let busy_id = metrics.samples("cluster.te_busy_s");
        for te in &self.tes {
            let busy = te.prior_busy + te.engine.stats().busy;
            metrics.record(busy_id, busy.as_secs_f64());
        }

        RunReport {
            latency,
            makespan,
            failed: self.failed,
            counters: self.counters.clone(),
            te_busy: self
                .tes
                .iter()
                .map(|t| (t.id, t.prior_busy + t.engine.stats().busy))
                .collect(),
            trace,
            metrics,
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrival(idx) => self.on_arrival(now, idx),
            Event::Wake(te) => self.on_wake(now, te),
            Event::Populate(te, epoch, ticket) => {
                let current = {
                    let t = &self.tes[te.0 as usize];
                    t.alive && t.epoch == epoch
                };
                if current {
                    self.te_mut(te).engine.populate_transfer_done(now, ticket);
                    self.reschedule_wake(now, te);
                }
            }
            Event::FabricAdvance => self.on_fabric(now),
            Event::Fault(idx) => self.on_fault(now, idx),
            Event::HealthCheck => self.on_health_check(now),
            Event::Redispatch(idx, gen) => {
                // A bumped generation means the request went terminal (and
                // the slot may hold a different request by now): no-op.
                if self.slot_gen[idx as usize] == gen {
                    self.dispatch(now, idx);
                }
            }
            Event::RepairDone(te) => self.on_repair_done(now, te),
            Event::StragglerEnd(te) => {
                // Harmless on a replacement engine: its slowdown is 1.0.
                let t = self.te_mut(te);
                if t.alive {
                    t.engine.set_slowdown(1.0);
                    self.reschedule_wake(now, te);
                }
            }
            Event::MigrationRetry(id) => self.on_migration_retry(now, id),
            Event::ModelReady(m) => self.on_model_ready(now, m),
        }
    }

    fn te_mut(&mut self, id: TeId) -> &mut Te {
        &mut self.tes[id.0 as usize]
    }

    /// Scheduling view of the pool. TEs the health monitor has declared
    /// down are excluded; TEs that crashed but are not yet detected stay
    /// routable — the platform cannot know about a failure before its
    /// heartbeats go missing.
    fn sched_pool(&self) -> SchedPool {
        let mut pool = SchedPool::default();
        for t in &self.tes {
            if t.detected {
                continue;
            }
            if t.role == TeRole::Colocated {
                pool.colocated.push(t.id);
            }
            pool.loads.insert(
                t.id,
                TeSnapshot {
                    load: t.engine.load(),
                },
            );
        }
        pool.pairs = self
            .pairs
            .iter()
            .copied()
            .filter(|&(p, d)| !self.tes[p.0 as usize].detected && !self.tes[d.0 as usize].detected)
            .collect();
        pool
    }

    fn on_arrival(&mut self, now: SimTime, idx: u32) {
        // One-lookahead streaming: pull and schedule the successor before
        // dispatching, so the queue holds the next arrival during this
        // dispatch exactly as a materialized inject would.
        if self.stream.is_some() {
            self.pull_next_stream();
        }
        self.first_arrival = Some(self.first_arrival.unwrap_or(now).min(now));
        if self.tracer.is_enabled() {
            if let Some(req) = &self.arrivals[idx as usize] {
                self.tracer.event(
                    now,
                    "arrival",
                    vec![
                        ("req", req.id.0.into()),
                        ("prompt_tokens", req.prompt.len().into()),
                        ("target_output", req.target_output.into()),
                    ],
                );
            }
            let depth: usize = self.tes.iter().map(|t| t.engine.queue_len()).sum();
            let qid = self.metrics.series("cluster.queue_depth");
            self.metrics.record_at(qid, now, depth as f64);
        }
        self.submitted += 1;
        self.dispatch(now, idx);
    }

    /// Routes one arrival (or re-dispatch) through the JE. The request
    /// keeps its original arrival stamp, so TTFT/JCT of a requeued request
    /// include the full failure + backoff delay.
    fn dispatch(&mut self, now: SimTime, idx: u32) {
        // A freed slot means the request already reached a terminal
        // state; stale redispatches land here and no-op.
        let Some(req) = self.arrivals[idx as usize].clone() else {
            return;
        };
        if self.fleet.is_some() {
            if let Some(m) = req.model {
                // Model-tagged request: route through the fleet registry.
                // Untagged requests keep the single-model path below.
                self.fleet_dispatch(now, idx, m);
                return;
            }
        }
        let pool = self.sched_pool();
        if pool.colocated.is_empty() && pool.pairs.is_empty() {
            // Every routable TE is detected-down; park the request until a
            // repair restores capacity.
            self.counters.incr("sim.dispatch_deferred");
            let gen = self.slot_gen[idx as usize];
            self.sched(
                now + self.fault_cfg.backoff_cap,
                Event::Redispatch(idx, gen),
            );
            return;
        }
        let decision: Decision = self.je.schedule(now, &req, &pool);
        let new = NewRequest {
            id: req.id,
            prompt: req.prompt.clone(),
            target_output: req.target_output,
            arrival: req.arrival,
            cache_id: req.cache_id,
        };
        match decision.target {
            Target::Colocated(te_id) => {
                self.counters.incr("sim.routed_colocated");
                self.submit_to(now, te_id, new);
            }
            Target::Disaggregated { prefill, decode } => {
                self.counters.incr("sim.routed_disaggregated");
                self.decode_route.insert(req.id, decode);
                self.pending_migration.insert(req.id, new.clone());
                self.submit_to(now, prefill, new);
            }
        }
    }

    fn submit_to(&mut self, now: SimTime, te_id: TeId, new: NewRequest) {
        let world = self.cfg.parallelism.world_size() as u64;
        let kv_bytes_tok = self.cfg.model.kv_bytes_per_token();
        let id = new.id;
        let outcome = {
            let te = self.te_mut(te_id);
            te.engine.submit(now, new)
        };
        if !outcome.accepted {
            self.counters.incr("sim.rejected");
            self.note_failed(now, id, "rejected");
        }
        if let Some(p) = outcome.populate {
            // Populate streams each rank's slice in parallel; the channel
            // is sized for the aggregate, so charge total bytes.
            let bytes = p.tokens as u64 * kv_bytes_tok;
            let te = self.te_mut(te_id);
            let done = te.pcie.enqueue(now, bytes);
            let epoch = te.epoch;
            self.sched(done, Event::Populate(te_id, epoch, p.ticket));
            let _ = world;
        }
        self.reschedule_wake(now, te_id);
    }

    fn reschedule_wake(&mut self, now: SimTime, te_id: TeId) {
        if !self.tes[te_id.0 as usize].alive {
            return;
        }
        let wake = {
            let te = self.te_mut(te_id);
            te.engine.next_wake(now)
        };
        let Some(wake) = wake else { return };
        let te = self.te_mut(te_id);
        // Dedup: skip if an equal-or-earlier wake is already scheduled.
        if te.scheduled_wake.is_some_and(|w| w <= wake && w >= now) {
            return;
        }
        te.scheduled_wake = Some(wake);
        self.sched(wake.max_of(now), Event::Wake(te_id));
    }

    /// Whether TE `te_id` should advance for a wake due at `now`, applying
    /// the gate's side effect (clearing a consumed `scheduled_wake`).
    fn wake_gate(&mut self, now: SimTime, te_id: TeId) -> bool {
        // A crashed TE computes nothing; stale wakes fall on the floor.
        if !self.tes[te_id.0 as usize].alive {
            return false;
        }
        let te = self.te_mut(te_id);
        match te.scheduled_wake {
            Some(w) if w == now => {
                te.scheduled_wake = None;
                true
            }
            // Superseded wake: a later reschedule moved this TE's next
            // deadline past `now` (fast-forward pushing `ends_at` out),
            // so the engine provably has nothing to do yet.
            Some(w) if w > now => false,
            _ => true,
        }
    }

    fn current_pacing(&self) -> Pacing {
        if self.fast_forward {
            let mut horizon = self.horizon_times.min();
            // Live pacing: clamp absorption to the wall frontier. The
            // fence sits one nanosecond past the limit so an iteration
            // ending exactly at the limit (which `step_until` would still
            // process) can be absorbed, but nothing beyond it.
            if let Some(limit) = self.live.as_ref().and_then(|l| l.pace_limit) {
                let fence = limit + SimDuration::from_nanos(1);
                horizon = Some(horizon.map_or(fence, |h| h.min(fence)));
            }
            Pacing::FastForward { horizon }
        } else {
            Pacing::SingleStep
        }
    }

    fn on_wake(&mut self, now: SimTime, te_id: TeId) {
        if !self.wake_gate(now, te_id) {
            return;
        }
        let pacing = self.current_pacing();
        let mut events = std::mem::take(&mut self.events_scratch);
        events.clear();
        {
            let te = self.te_mut(te_id);
            te.engine.advance_paced(now, pacing, &mut events);
        }
        for ev in events.drain(..) {
            self.on_engine_event(now, te_id, ev);
        }
        self.events_scratch = events;
        self.reschedule_wake(now, te_id);
    }

    /// Conservative parallel stepping: handles `first` (an already-popped
    /// wake) together with every consecutive queue-head event that is also
    /// an independent wake, advancing the engines concurrently on the
    /// persistent worker pool (sequentially in place at one thread).
    /// Prefill wakes join only under wide windows (fault-
    /// free runs), fenced by `prefill_fence`; otherwise they end
    /// collection. Returns the number of events processed (batch members
    /// plus merge-drained reschedules).
    ///
    /// Why this is exactly the sequential execution (see DESIGN.md
    /// "Parallel stepping" for the full argument):
    ///
    /// * **Lookahead.** Collection stops at the first event that is not a
    ///   batch-eligible wake — so at the first *horizon-bounding* event,
    ///   unless wide windows admit it under a fence (below). Batch members
    ///   therefore all precede the next event whose handler could touch
    ///   another TE, and a non-prefill wake's own handler only advances
    ///   its TE and reschedules its own next wake — so members commute
    ///   with everything between them.
    /// * **Frozen gates.** Nothing a member does changes another member's
    ///   gate (`alive`, `scheduled_wake`), so the gates evaluated up front
    ///   equal the values the sequential loop would compute one by one. A
    ///   second queued wake for a TE already in the batch *can* observe
    ///   the first one's effects, so it ends collection instead of
    ///   joining.
    /// * **Waved advance.** The only member whose application changes the
    ///   horizon multiset is a prefill member (entry removal plus re-wake
    ///   and migration insertions); decode and colocated applies never
    ///   touch it. The batch therefore splits into *waves* — maximal runs
    ///   of same-kind members — and one pacing read per wave is exact:
    ///   within a wave the multiset is frozen, and the read at a wave
    ///   boundary happens after the preceding prefill applications, right
    ///   where the sequential loop would observe the change.
    /// * **Exact-order merge.** Workers only mutate the engines moved to
    ///   them and fill private event buffers; the pool reassembles chunks
    ///   by original wave position regardless of which lane finished
    ///   first. The coordinator then replays the buffers in pop order, and before applying member *i* at `t_i`
    ///   drains every queue event strictly earlier than `t_i` — the only
    ///   such events are wakes the merge itself scheduled for
    ///   already-applied members, which sequentially would fire between
    ///   the two timestamps. Every coordinator-side mutation (float
    ///   accumulation, prompt-tree updates, trace emission, event-queue
    ///   sequence numbers) therefore happens in the sequential order.
    ///   A mid-batch prefill application inserts only events at or after
    ///   the cutoff (re-wake ≥ its fence) or at/after the already-queued
    ///   fabric wake (`schedule_fabric`: adding a transfer only pushes
    ///   other completions out, and the new one finishes no earlier than
    ///   the lone estimate ≥ the fence) — both past every member, so no
    ///   later member or drain can observe them early.
    fn step_wake_batch(&mut self, first_t: SimTime, first_te: TeId) -> u64 {
        // --- collect the maximal run of independent non-prefill wakes ---
        let n_tes = self.tes.len();
        let mut batch = std::mem::take(&mut self.batch_scratch);
        let mut member = std::mem::take(&mut self.batch_member);
        batch.clear();
        member.clear();
        member.resize(n_tes, false);
        member[first_te.0 as usize] = true;
        batch.push((first_t, first_te, false));
        // Wide windows: prefill wakes may join the batch, each
        // contributing a fence — the earliest instant its handler could
        // affect any other TE (see `prefill_fence`). The running `cutoff`
        // is the smallest fence so far, and once set it bounds *every*
        // further member, decode wakes included: collection stops
        // strictly before it, so every KV migration and new-iteration
        // re-wake a prefill application produces lands outside the
        // window, after all members. Joined prefill wakes keep their
        // horizon-bounding multiset entries until the merge applies them
        // — exactly when a sequential pop would drop them — so the
        // per-wave pacing reads and every merge-drained wake (which
        // consults the live multiset) see the same horizons the
        // sequential loop would. Prefill engines themselves never absorb
        // (fast-forward requires a quiescent pure-decode batch, and
        // prefill-role TEs never hold decode work), so the pacing their
        // own advance receives is moot.
        let wide = self.wide_windows && self.health.is_none();
        let mut cutoff: Option<SimTime> = None;
        if self.tes[first_te.0 as usize].role == TeRole::Prefill {
            cutoff = Some(self.prefill_fence(first_t, first_te));
        }
        // Live pacing: never collect a wake past the wall frontier — the
        // sequential `step_until` loop would stop before it.
        let pace_limit = self.live.as_ref().and_then(|l| l.pace_limit);
        while let Some((t, &Event::Wake(te))) = self.clock.peek() {
            let idx = te.0 as usize;
            let is_prefill = self.tes[idx].role == TeRole::Prefill;
            if member[idx] {
                break;
            }
            if is_prefill && !wide {
                break;
            }
            if cutoff.is_some_and(|c| t >= c) {
                break;
            }
            if pace_limit.is_some_and(|limit| t > limit) {
                break;
            }
            let Some((t, ev)) = self.clock.pop_pending() else {
                break; // unreachable: peek above returned Some
            };
            if is_prefill {
                // Defer the horizon-entry removal to merge application
                // (see above); only mirror the live-pending bookkeeping.
                if let Some(live) = &mut self.live {
                    live.pending.remove(t);
                }
                let fence = self.prefill_fence(t, te);
                cutoff = Some(cutoff.map_or(fence, |c| c.min(fence)));
            } else {
                self.note_popped(t, ev);
            }
            member[idx] = true;
            batch.push((t, te, false));
        }

        // --- gate members up front (valid because the window is frozen) ---
        for entry in &mut batch {
            entry.2 = self.wake_gate(entry.0, entry.1);
        }

        // --- advance and merge in waves ---
        // A wave is a maximal run of same-kind (prefill vs non-prefill)
        // members. Decode/colocated applications never touch the horizon
        // multiset, and prefill applications — the only ones that do —
        // sit at wave boundaries, so reading the pacing once per wave is
        // exactly what the sequential loop would observe at each member's
        // pop. Prefill members never absorb, so the pacing their wave
        // reads is irrelevant to them; what matters is that their
        // *application* precedes the next wave's read.
        self.exec_batches += 1;
        self.exec_members += batch.iter().filter(|e| e.2).count() as u64;
        self.exec_prefill_members += batch
            .iter()
            .filter(|e| e.2 && self.tes[e.1 .0 as usize].role == TeRole::Prefill)
            .count() as u64;
        let mut processed = 0u64;
        let mut bufs = std::mem::take(&mut self.wave_bufs);
        let mut start = 0usize;
        while start < batch.len() {
            let wave_prefill = self.tes[batch[start].1 .0 as usize].role == TeRole::Prefill;
            let mut end = start + 1;
            while end < batch.len()
                && (self.tes[batch[end].1 .0 as usize].role == TeRole::Prefill) == wave_prefill
            {
                end += 1;
            }
            let eligible = batch[start..end].iter().filter(|e| e.2).count();
            bufs.clear();
            for _ in 0..eligible {
                let mut b = self.wake_buf_pool.pop().unwrap_or_default();
                b.clear();
                bufs.push(b);
            }
            self.advance_wave(&batch[start..end], &mut bufs);

            // Merge the wave in pop order, draining reschedules into the
            // gaps.
            let mut slot = 0;
            for (i, &(t_i, te_i, ok)) in batch[start..end].iter().enumerate() {
                while self.clock.peek_time().is_some_and(|t| t < t_i) {
                    let Some((dt, dev)) = self.clock.next() else {
                        break; // unreachable: peek_time above returned Some
                    };
                    debug_assert!(matches!(dev, Event::Wake(_)), "drained a non-wake event");
                    self.note_popped(dt, dev);
                    self.handle(dt, dev);
                    processed += 1;
                }
                self.clock.advance_to(t_i);
                if wave_prefill && start + i > 0 {
                    // Collection deferred this joined prefill wake's
                    // horizon entry; drop it now, at the instant a
                    // sequential pop would (the run loop already dropped
                    // the first member's).
                    self.horizon_times.remove(t_i);
                }
                if ok {
                    let mut buf = std::mem::take(&mut bufs[slot]);
                    slot += 1;
                    for ev in buf.drain(..) {
                        self.on_engine_event(t_i, te_i, ev);
                    }
                    self.wake_buf_pool.push(buf);
                    self.reschedule_wake(t_i, te_i);
                }
                processed += 1;
            }
            start = end;
        }
        bufs.clear();
        self.wave_bufs = bufs;

        batch.clear();
        member.clear();
        self.batch_scratch = batch;
        self.batch_member = member;
        processed
    }

    /// Advances the gated members of one wave, filling one private event
    /// buffer per gated member (in wave order). Single-threaded (or
    /// single-member) waves run the classic sequential loop; otherwise
    /// each member's engine is moved into the persistent [`WorkerPool`]
    /// (a recycled zero-capacity placeholder parks in its TE slot) and
    /// the pool advances the wave across its lanes with work-stealing.
    /// Either way the results land back in wave order, so the merge in
    /// `step_wake_batch` is oblivious to the execution strategy. Reads
    /// the pacing on entry — i.e. after every preceding wave's
    /// application, the only point inside a batch where the horizon
    /// multiset can change (see `step_wake_batch`).
    fn advance_wave(&mut self, wave: &[(SimTime, TeId, bool)], bufs: &mut [Vec<EngineEvent>]) {
        let pacing = self.current_pacing();
        if self.threads.min(bufs.len()) <= 1 {
            // Sequential reference path: members are distinct TEs,
            // advanced in wave order against their private buffers.
            let mut slot = 0;
            for &(t, te, ok) in wave {
                if ok {
                    self.tes[te.0 as usize]
                        .engine
                        .advance_paced(t, pacing, &mut bufs[slot]);
                    slot += 1;
                }
            }
            return;
        }
        // Parallel path. The pool's workers hold no borrow into the sim:
        // each gated member's engine is *moved* out (a placeholder takes
        // its slot), travels through the handoff channel with its wake
        // time and buffer, and is moved back in wave order afterwards.
        if self.pool.is_none() {
            // `default_threads()` picked multi-threading without a
            // `set_threads` call; stand the pool up on first use.
            self.pool = Some(WorkerPool::new(self.threads));
        }
        let mut members = std::mem::take(&mut self.pool_members);
        debug_assert!(members.is_empty());
        let mut slot = 0;
        for &(t, te, ok) in wave {
            if !ok {
                continue;
            }
            let placeholder = match self.spare_engines.pop() {
                Some(e) => e,
                None => Self::placeholder_engine(&self.cfg),
            };
            let engine = std::mem::replace(&mut self.tes[te.0 as usize].engine, placeholder);
            members.push(PoolMember {
                at: t,
                engine,
                buf: std::mem::take(&mut bufs[slot]),
            });
            slot += 1;
        }
        if let Some(pool) = self.pool.as_mut() {
            pool.advance(pacing, &mut members);
        }
        let mut slot = 0;
        let mut drained = members.drain(..);
        for &(_, te, ok) in wave {
            if !ok {
                continue;
            }
            let Some(m) = drained.next() else {
                break; // unreachable: pool returns every member it was given
            };
            let placeholder = std::mem::replace(&mut self.tes[te.0 as usize].engine, m.engine);
            self.spare_engines.push(placeholder);
            bufs[slot] = m.buf;
            slot += 1;
        }
        drop(drained);
        self.pool_members = members;
    }

    /// Builds a zero-capacity engine to park in a TE slot while the real
    /// engine is out in the worker pool for a wave. `kv_reserve_frac:
    /// 1.0` + `dram_blocks: 0` yield an engine with no KV blocks and an
    /// empty RTC — it is only ever parked, never stepped, and the pool
    /// recycles them through `spare_engines`.
    fn placeholder_engine(cfg: &ClusterConfig) -> Engine {
        let engine_cfg = EngineConfig {
            kv_reserve_frac: 1.0,
            dram_blocks: 0,
            ..cfg.engine.clone()
        };
        let cost = ExecCostModel::new(
            cfg.cluster.server.chip.clone(),
            cfg.cluster.hccs,
            cfg.model.clone(),
            cfg.parallelism,
        );
        Engine::new(engine_cfg, cost)
    }

    /// Earliest instant at which running the prefill wake `(t, te)` could
    /// affect any other TE — the conservative bound that lets prefill
    /// wakes join a parallel window (DESIGN.md "Wide parallel windows").
    ///
    /// * An in-flight iteration ending after `t` means the wake is a pure
    ///   reschedule no-op: nothing happens before that end.
    /// * Otherwise the wake may complete prefill parts at `t` and start
    ///   their KV migrations; each lands no earlier than `t` plus the
    ///   fabric's lone-transfer time for its exposed bytes (link sharing
    ///   only slows transfers, and wide windows are off under faults, so
    ///   no degraded link or transfer flake can undercut the estimate).
    ///   Routeless completions only release KV on their own engine.
    /// * Any same-TE re-wake it schedules is either at `t` itself (a
    ///   harmless same-instant no-op: a freshly started iteration ends at
    ///   least one iteration floor later) or at the next iteration end,
    ///   which the floor also bounds — so a merge-drained wake before the
    ///   fence can never complete further prefills.
    fn prefill_fence(&mut self, t: SimTime, te: TeId) -> SimTime {
        let idx = te.0 as usize;
        if let Some(end) = self.tes[idx].engine.current_iteration_end() {
            if end > t {
                return end;
            }
        }
        // Re-wake bound: the engine's own proof of the cheapest iteration
        // it could start next. With no queued prefill work there is no
        // re-wake to bound, but fall back to the global iteration floor
        // anyway so wake-path side channels (kv retries, swaps) stay
        // outside the window.
        let floor = self.tes[idx]
            .engine
            .next_prefill_span_floor(t)
            .unwrap_or_else(|| self.tes[idx].engine.min_iteration_span());
        let mut fence = t + floor;
        let mut peeked = std::mem::take(&mut self.fence_scratch);
        peeked.clear();
        self.tes[idx]
            .engine
            .peek_prefill_completions(t, &mut peeked);
        let kv_bytes_tok = self.cfg.model.kv_bytes_per_token();
        let overlap = self.cfg.kv_transfer_overlap;
        for &(id, kv_tokens) in peeked.iter() {
            let Some(&to) = self.decode_route.get(&id) else {
                continue;
            };
            let total = kv_tokens as u64 * kv_bytes_tok;
            // Mirrors `start_migration`'s exposed-bytes computation (the
            // degrade branch is unreachable here: wide windows imply a
            // fault-free run).
            let exposed = (total as f64 * (1.0 - overlap)).max(1.0) as u64;
            let src = self.tes[idx].npus[0];
            let dst = self.tes[to.0 as usize].npus[0];
            let est = self.fabric.lone_transfer_estimate(src, dst, exposed);
            fence = fence.min(t + est);
        }
        peeked.clear();
        self.fence_scratch = peeked;
        fence
    }

    fn on_engine_event(&mut self, now: SimTime, te_id: TeId, ev: EngineEvent) {
        match ev {
            EngineEvent::FirstToken { id, at } => {
                // Cache insertion happened inside the engine; sync the JE
                // tree for locality scheduling.
                let role = self.tes[te_id.0 as usize].role;
                if role == TeRole::Colocated {
                    if let Some(new) = self.arrival_prompt(id) {
                        self.je.note_cached(now, te_id, false, &new);
                    }
                }
                if let Some(live) = &mut self.live {
                    live.events.push(LiveEvent::FirstToken { id, at });
                }
            }
            EngineEvent::Tokens { id, at, n } => {
                // Streaming-only notification; no scheduling or stats
                // bookkeeping hangs off it.
                if let Some(live) = &mut self.live {
                    live.events.push(LiveEvent::Tokens { id, at, n });
                }
            }
            EngineEvent::PrefillComplete { id, at, kv_tokens } => {
                let role = self.tes[te_id.0 as usize].role;
                debug_assert_eq!(role, TeRole::Prefill);
                if let Some(prompt) = self.arrival_prompt(id) {
                    self.je.note_cached(now, te_id, true, &prompt);
                }
                self.start_migration(now, te_id, id, kv_tokens, at);
            }
            EngineEvent::Finished {
                id,
                latency,
                cached_tokens,
                ..
            } => {
                if !self.mark_terminal(id) {
                    // A request must finish exactly once; a second finish
                    // means recovery bookkeeping double-submitted it.
                    self.counters.incr("sim.double_terminal");
                    debug_assert!(false, "request {id:?} reached a terminal state twice");
                    return;
                }
                if self.retries.get(&id).is_some_and(|&n| n > 0) {
                    // RTC prefix hits on re-dispatch shrink the re-prefill
                    // cost of recovered requests; measure the savings.
                    self.counters
                        .add("sim.requeue_cache_hit_tokens", cached_tokens as u64);
                }
                let ttft_id = self.metrics.samples("cluster.ttft_ms");
                self.metrics.record(ttft_id, latency.ttft.as_millis_f64());
                let tpot_id = self.metrics.samples("cluster.tpot_ms");
                self.metrics.record(tpot_id, latency.tpot.as_millis_f64());
                let jct_id = self.metrics.samples("cluster.jct_ms");
                self.metrics.record(jct_id, latency.jct.as_millis_f64());
                self.latency.record(latency);
                self.completed += 1;
                self.last_completion = now;
                self.counters.incr("sim.completed");
                if let Some(live) = &mut self.live {
                    live.events.push(LiveEvent::Finished {
                        id,
                        at: now,
                        output_tokens: latency.output_tokens,
                    });
                }
            }
            EngineEvent::Rejected { id } => {
                self.counters.incr("sim.rejected");
                self.note_failed(now, id, "rejected");
            }
        }
    }

    fn arrival_prompt(&self, id: RequestId) -> Option<flowserve::Prompt> {
        let &idx = self.arrival_index.get(&id)?;
        self.arrivals[idx as usize]
            .as_ref()
            .map(|r| r.prompt.clone())
    }

    fn start_migration(
        &mut self,
        now: SimTime,
        from: TeId,
        id: RequestId,
        kv_tokens: usize,
        first_token_at: SimTime,
    ) {
        if let Some(until) = self.flaky_until {
            // Transient DistFlow failure: the transfer attempt errors out
            // once per request inside the flaky window; back off and retry
            // with the route still intact.
            if now < until && self.flaked.insert(id) {
                self.counters.incr("sim.transfer_flaked");
                if self.tracer.is_enabled() {
                    self.tracer
                        .event(now, "distflow.transfer_failed", vec![("req", id.0.into())]);
                }
                self.migration_retry
                    .insert(id, (from, kv_tokens, first_token_at));
                self.sched(now + self.fault_cfg.backoff_base, Event::MigrationRetry(id));
                return;
            }
        }
        let Some(to) = self.decode_route.remove(&id) else {
            // No route (e.g. context-cache-create): release immediately.
            self.te_mut(from).engine.release_migrated(now, id);
            return;
        };
        if !self.tes[to.0 as usize].alive {
            // The decode endpoint died before the transfer started; free
            // the prefill copy and send the request back through the JE.
            self.pending_migration.remove(&id);
            self.counters.incr("sim.migrations_aborted");
            self.te_mut(from).engine.release_migrated(now, id);
            self.reschedule_wake(now, from);
            self.requeue(now, id);
            return;
        }
        let Some(new) = self.pending_migration.remove(&id) else {
            // Metadata lost (bookkeeping bug): loud in debug builds; in
            // release, free the prefill TE's copy instead of wedging it.
            debug_assert!(false, "disaggregated request {id:?} lacks stashed metadata");
            self.te_mut(from).engine.release_migrated(now, id);
            return;
        };
        // By-layer streaming overlaps most of the transfer with prefill;
        // only the residual tail is exposed (§4.5: "by-req or by-layer").
        let total_bytes = kv_tokens as u64 * self.cfg.model.kv_bytes_per_token();
        let mut exposed_f = (total_bytes as f64 * (1.0 - self.cfg.kv_transfer_overlap)).max(1.0);
        if let Some((factor, until)) = self.link_degrade {
            // Degraded bandwidth is modeled as proportionally more exposed
            // bytes over the unchanged fabric rate.
            if now < until {
                exposed_f /= factor;
                self.counters.incr("sim.transfers_degraded");
            }
        }
        let exposed = exposed_f as u64;
        let src = self.tes[from.0 as usize].npus[0];
        let dst = self.tes[to.0 as usize].npus[0];
        // Plan the move through DistFlow (backend selection + occupancy
        // accounting); the fabric then spends the simulated time.
        let link_kind = self.fabric.link_kind(src, dst);
        // TE head NPUs are linked by `DistFlow::link_cluster` at
        // construction, so planning can only fail if that wiring changes.
        let plan = match self.distflow.transfer_at(
            now,
            BufferInfo {
                npu: src,
                tier: MemTier::Hbm,
                bytes: total_bytes,
            },
            BufferInfo {
                npu: dst,
                tier: MemTier::Hbm,
                bytes: total_bytes,
            },
            link_kind,
        ) {
            Ok(plan) => plan,
            Err(e) => {
                debug_assert!(false, "unlinked TE pair {src:?} -> {dst:?}: {e:?}");
                self.te_mut(from).engine.release_migrated(now, id);
                return;
            }
        };
        let tid = self.fabric.start_transfer(now, src, dst, exposed);
        let span = if self.tracer.is_enabled() {
            self.tracer.start_span(
                now,
                "kv_migration",
                vec![
                    ("req", id.0.into()),
                    ("from_te", from.0.into()),
                    ("to_te", to.0.into()),
                    ("kv_tokens", kv_tokens.into()),
                    ("total_bytes", total_bytes.into()),
                    ("exposed_bytes", exposed.into()),
                    ("crosses_fabric", plan.crosses_fabric.into()),
                ],
            )
        } else {
            SpanId::NONE
        };
        self.in_flight_migrations.insert(
            tid,
            Migration {
                new,
                from,
                to,
                kv_tokens,
                first_token_at,
                span,
            },
        );
        self.counters.incr("sim.kv_migrations");
        self.counters.add("sim.kv_bytes_migrated", total_bytes);
        self.schedule_fabric(now);
    }

    fn schedule_fabric(&mut self, now: SimTime) {
        let Some(next) = self.fabric.next_event(now) else {
            return;
        };
        if self.fabric_wake.is_some_and(|w| w <= next && w >= now) {
            return;
        }
        self.fabric_wake = Some(next);
        self.sched(next.max_of(now), Event::FabricAdvance);
    }

    fn on_fabric(&mut self, now: SimTime) {
        if self.fabric_wake == Some(now) {
            self.fabric_wake = None;
        }
        let done = self.fabric.advance_to(now);
        for tid in done {
            let Some(m) = self.in_flight_migrations.remove(&tid) else {
                continue;
            };
            self.tracer.end_span(now, m.span);
            let from_alive = self.tes[m.from.0 as usize].alive;
            let to_alive = self.tes[m.to.0 as usize].alive;
            if !from_alive || !to_alive {
                // An endpoint died mid-transfer (crash not yet detected):
                // the KV never lands. A surviving source frees its copy and
                // the request requeues; a dead source still holds the
                // request, so its detection drain requeues it instead
                // (requeueing here too would double-submit).
                self.counters.incr("sim.migrations_aborted");
                if from_alive {
                    self.te_mut(m.from).engine.release_migrated(now, m.new.id);
                    self.reschedule_wake(now, m.from);
                    self.requeue(now, m.new.id);
                }
                continue;
            }
            self.te_mut(m.from).engine.release_migrated(now, m.new.id);
            let to = m.to;
            {
                let te = self.te_mut(to);
                te.engine
                    .submit_with_kv(now, m.new, m.kv_tokens, m.first_token_at);
            }
            self.reschedule_wake(now, m.from);
            self.reschedule_wake(now, to);
        }
        self.schedule_fabric(now);
    }

    // --- fault layer -----------------------------------------------------

    fn on_fault(&mut self, now: SimTime, idx: u32) {
        let FaultEvent { kind, .. } = self.fault_events[idx as usize];
        match kind {
            FaultKind::TeCrash { te } => self.on_te_crash(now, TeId(te)),
            FaultKind::Straggler {
                te,
                factor,
                duration,
            } => {
                let te_id = TeId(te);
                if !self.tes[te_id.0 as usize].alive {
                    return;
                }
                self.te_mut(te_id).engine.set_slowdown(factor);
                self.counters.incr("cluster.stragglers");
                if self.tracer.is_enabled() {
                    self.tracer.event(
                        now,
                        "te.straggler",
                        vec![("te", te.into()), ("factor", factor.into())],
                    );
                }
                self.sched(now + duration, Event::StragglerEnd(te_id));
            }
            FaultKind::LinkDegrade { factor, duration } => {
                self.link_degrade = Some((factor.clamp(0.01, 1.0), now + duration));
                self.counters.incr("cluster.link_degrades");
                if self.tracer.is_enabled() {
                    self.tracer
                        .event(now, "fabric.degraded", vec![("factor", factor.into())]);
                }
            }
            FaultKind::TransferFlake { duration } => {
                self.flaky_until = Some(now + duration);
                self.counters.incr("cluster.transfer_flakes");
                if self.tracer.is_enabled() {
                    self.tracer.event(now, "distflow.flaky", vec![]);
                }
            }
        }
    }

    /// The TE dies instantly: in-flight batches, KV cache and RTC contents
    /// are gone. Nothing else in the platform learns about it until the
    /// health monitor misses enough heartbeats.
    fn on_te_crash(&mut self, now: SimTime, te_id: TeId) {
        let te = self.te_mut(te_id);
        if !te.alive {
            return;
        }
        te.alive = false;
        te.failed_at = Some(now);
        te.scheduled_wake = None;
        self.counters.incr("cluster.failures");
        if self.tracer.is_enabled() {
            self.tracer
                .event(now, "te.failed", vec![("te", te_id.0.into())]);
        }
    }

    /// Cluster-manager heartbeat sweep: live TEs beat, silent TEs accrue
    /// misses, and TEs past the threshold enter detection + repair.
    fn on_health_check(&mut self, now: SimTime) {
        let Some(mut health) = self.health.take() else {
            return;
        };
        for te in &self.tes {
            if te.alive {
                health.heartbeat(te.id, now);
            }
        }
        let newly_down = health.sweep(now);
        let interval = health.config().heartbeat_interval;
        self.health = Some(health);
        for te in newly_down {
            self.on_te_detected(now, te);
        }
        // Keep sweeping while anything is outstanding; stop once every
        // request terminated and no repair is in flight, so the sim ends.
        let outstanding = (self.completed + self.failed) < self.injected_total
            || self.stream.is_some()
            || self.repairs_pending > 0;
        if outstanding {
            self.sched(now + interval, Event::HealthCheck);
        }
    }

    /// The platform reacts to a detected failure: deregister the TE from
    /// scheduling and DistFlow, abort its transfers, re-queue everything it
    /// was holding, and kick off a replacement through the fast-scaling
    /// pipeline.
    fn on_te_detected(&mut self, now: SimTime, te_id: TeId) {
        let detection_ms = {
            let te = self.te_mut(te_id);
            te.detected = true;
            now.since(te.failed_at.unwrap_or(now)).as_millis_f64()
        };
        self.counters.incr("cluster.detected_down");
        if self.tracer.is_enabled() {
            self.tracer.event(
                now,
                "te.detected_down",
                vec![
                    ("te", te_id.0.into()),
                    ("detection_latency_ms", detection_ms.into()),
                ],
            );
        }
        self.je.note_te_removed(te_id);
        let head = self.tes[te_id.0 as usize].npus[0];
        self.distflow.unlink_npu(head);

        // Abort in-flight KV migrations touching the dead TE (BTreeMap
        // iteration makes the order deterministic: ascending TransferId).
        let doomed: Vec<TransferId> = self
            .in_flight_migrations
            .iter()
            .filter(|(_, m)| m.from == te_id || m.to == te_id)
            .map(|(&tid, _)| tid)
            .collect();
        for tid in doomed {
            let Some(m) = self.in_flight_migrations.remove(&tid) else {
                continue; // collected from this map just above
            };
            self.tracer.end_span(now, m.span);
            self.counters.incr("sim.migrations_aborted");
            if self.tes[m.from.0 as usize].alive {
                self.te_mut(m.from).engine.release_migrated(now, m.new.id);
                self.reschedule_wake(now, m.from);
                self.requeue(now, m.new.id);
            }
            // Dead source: the drain below requeues the request.
        }

        // Replace the engine (all KV and cache state is lost) and salvage
        // the dead one's observability into the final report.
        let idx = te_id.0 as usize;
        let role = self.tes[idx].role;
        let mut old = Self::build_engine(&self.cfg, role);
        if let Some((level, cap)) = self.trace_cfg {
            old.enable_tracing(level, cap);
        }
        old.set_token_events(self.token_events);
        std::mem::swap(&mut self.tes[idx].engine, &mut old);
        self.tes[idx].epoch += 1;
        self.tes[idx].scheduled_wake = None;
        let orphans = old.active_request_ids();
        for (k, v) in old.counters().iter() {
            self.salvaged_counters.add(k, v);
        }
        for (k, v) in old.rtc().counters().iter() {
            self.salvaged_counters.add(k, v);
        }
        self.tes[idx].prior_busy += old.stats().busy;
        self.salvaged_traces
            .push((format!("te{idx}"), old.take_trace()));

        // Everything the TE was holding restarts from scratch elsewhere.
        for id in orphans {
            self.decode_route.remove(&id);
            self.pending_migration.remove(&id);
            self.migration_retry.remove(&id);
            self.requeue(now, id);
        }
        // Fleet residency died with the engine: the replacement comes up
        // with empty HBM, so every model hosted here loses this replica
        // (orphans re-dispatch through the registry and reload if needed).
        if let Some(fleet) = self.fleet.as_mut() {
            fleet.resident[idx].clear();
            fleet.resident_bytes[idx] = 0;
            fleet.registry.drop_host_everywhere(te_id);
        }
        self.start_repair(now, te_id);
    }

    /// Provisions a replacement TE via the 5-step fast-scaling pipeline;
    /// the configured [`ScalingOptimizations`] decide the repair latency.
    fn start_repair(&mut self, now: SimTime, te_id: TeId) {
        let model = ScalingModel::new(self.cfg.cluster.clone());
        let ckpt = Checkpoint::new(FileId(1), self.cfg.model.clone());
        let opts = self.fault_cfg.repair;
        let any_alive = self.tes.iter().any(|t| t.alive);
        let path = if opts.npu_fork && any_alive {
            // Fork weights HBM-to-HBM from a surviving replica.
            LoadPath::NpuForkHccs { fanout: 1 }
        } else if opts.dram_preload {
            LoadPath::DramHit
        } else {
            LoadPath::DramMiss
        };
        let breakdown =
            model.breakdown(&ckpt, self.cfg.parallelism, opts, path, SourceLoad::idle());
        breakdown.emit_trace(&mut self.tracer, now);
        self.repairs_pending += 1;
        self.counters.incr("cluster.repairs_started");
        self.sched(now + breakdown.total(), Event::RepairDone(te_id));
    }

    fn on_repair_done(&mut self, now: SimTime, te_id: TeId) {
        self.repairs_pending = self.repairs_pending.saturating_sub(1);
        let failed_at = {
            let te = self.te_mut(te_id);
            te.alive = true;
            te.detected = false;
            te.failed_at.take()
        };
        let outage = now.since(failed_at.unwrap_or(now));
        self.counters.incr("cluster.repaired");
        let lat_id = self.metrics.samples("cluster.repair_latency_ms");
        self.metrics.record(lat_id, outage.as_millis_f64());
        if self.tracer.is_enabled() {
            self.tracer.event(
                now,
                "te.repaired",
                vec![
                    ("te", te_id.0.into()),
                    ("outage_ms", outage.as_millis_f64().into()),
                ],
            );
        }
        self.je.note_te_added(te_id);
        if let Some(h) = self.health.as_mut() {
            h.register(te_id, now);
        }
        // Re-link DistFlow over the live pool (idempotent set insertion).
        let heads: Vec<NpuId> = self
            .tes
            .iter()
            .filter(|t| t.alive)
            .map(|t| t.npus[0])
            .collect();
        self.distflow.link_cluster(&heads);
        self.reschedule_wake(now, te_id);
    }

    /// Sends a request back through the JE after capped exponential
    /// backoff, or fails it permanently once the retry budget is spent.
    fn requeue(&mut self, now: SimTime, id: RequestId) {
        let Some(&idx) = self.arrival_index.get(&id) else {
            return; // already terminal
        };
        let attempts = {
            let n = self.retries.entry(id).or_insert(0);
            *n += 1;
            *n
        };
        if attempts > self.fault_cfg.max_retries {
            self.note_failed(now, id, "retries_exhausted");
            return;
        }
        let backoff = self
            .fault_cfg
            .backoff_base
            .saturating_mul(1u64 << (attempts.min(16) - 1))
            .min(self.fault_cfg.backoff_cap);
        self.counters.incr("sim.requeued");
        if self.tracer.is_enabled() {
            self.tracer.event(
                now,
                "request.requeued",
                vec![("req", id.0.into()), ("attempt", attempts.into())],
            );
        }
        let gen = self.slot_gen[idx as usize];
        self.sched(now + backoff, Event::Redispatch(idx, gen));
    }

    fn note_failed(&mut self, now: SimTime, id: RequestId, reason: &'static str) {
        if !self.mark_terminal(id) {
            self.counters.incr("sim.double_terminal");
            debug_assert!(false, "request {id:?} reached a terminal state twice");
            return;
        }
        self.decode_route.remove(&id);
        self.pending_migration.remove(&id);
        self.migration_retry.remove(&id);
        self.failed += 1;
        self.counters.incr("sim.failed");
        self.last_completion = self.last_completion.max_of(now);
        if let Some(live) = &mut self.live {
            live.events.push(LiveEvent::Failed { id, at: now });
        }
        if self.tracer.is_enabled() {
            self.tracer.event(
                now,
                "request.failed",
                vec![
                    ("req", id.0.into()),
                    ("reason", reason.into()),
                    (
                        "retries",
                        self.retries.get(&id).copied().unwrap_or(0).into(),
                    ),
                ],
            );
        }
    }

    fn on_migration_retry(&mut self, now: SimTime, id: RequestId) {
        let Some((from, kv_tokens, first_token_at)) = self.migration_retry.remove(&id) else {
            // Already handled elsewhere (source crash drain, terminal).
            return;
        };
        if !self.arrival_index.contains_key(&id) || !self.tes[from.0 as usize].alive {
            return;
        }
        self.start_migration(now, from, id, kv_tokens, first_token_at);
    }

    // --- model fleet ------------------------------------------------------

    /// Switches the sim into model-fleet mode: requests tagged with a
    /// model index ([`ApiRequest::with_model`]) route through the registry,
    /// paying a cold start through the storage hierarchy when the model is
    /// not HBM-resident anywhere. Untagged requests keep the single-model
    /// path, so a fleet sim with no tagged traffic is byte-identical to a
    /// plain one. Call before injecting or submitting anything.
    ///
    /// Execution cost remains the configured engine template for every
    /// model (the fleet layer measures cold-start economics, not per-model
    /// decode speed — see DESIGN.md "Model fleet & storage hierarchy").
    ///
    /// # Panics
    ///
    /// Panics if any TE is not colocated: the fleet layer schedules whole
    /// requests onto single TEs.
    pub fn enable_fleet(&mut self, registry: ModelRegistry, cfg: FleetConfig) {
        assert!(
            self.tes.iter().all(|t| t.role == TeRole::Colocated),
            "fleet mode requires an all-colocated pool"
        );
        let world = self.cfg.parallelism.world_size() as u64;
        let te_budget = cfg
            .hbm_weight_budget
            .unwrap_or(world * self.cfg.cluster.server.chip.hbm_bytes * 7 / 10);
        let stores = (0..self.cfg.cluster.num_servers)
            .map(|_| ServerStore::for_server(&self.cfg.cluster.server))
            .collect();
        self.fleet = Some(FleetState {
            registry,
            cfg,
            stores,
            waiting: BTreeMap::new(),
            inflight: BTreeMap::new(),
            resident: vec![Vec::new(); self.tes.len()],
            resident_bytes: vec![0; self.tes.len()],
            te_budget,
        });
    }

    /// Registry access for frontends (`/v1/models`); `None` outside fleet
    /// mode.
    pub fn fleet_registry(&self) -> Option<&ModelRegistry> {
        self.fleet.as_ref().map(|f| &f.registry)
    }

    /// Pre-seeds a model's checkpoint into every server's SSD (the common
    /// steady state: the whole fleet is staged on local SSD, only DRAM and
    /// HBM are scarce). Deterministic setup, not a simulated action.
    pub fn stage_fleet_on_ssd(&mut self) {
        let Some(fleet) = self.fleet.as_mut() else {
            return;
        };
        for m in 0..fleet.registry.len() as u32 {
            let Some(entry) = fleet.registry.entry(m) else {
                continue;
            };
            let (file, size) = (entry.ckpt.file, entry.ckpt.total_bytes());
            for store in &mut fleet.stores {
                store.prime_ssd(file, size);
            }
        }
    }

    /// Pre-seeds one model's checkpoint onto one server's SSD (tests and
    /// benches shaping locality scenarios). Deterministic setup.
    pub fn prime_model_on_server(&mut self, m: u32, server: usize) {
        let Some(fleet) = self.fleet.as_mut() else {
            return;
        };
        let Some(entry) = fleet.registry.entry(m) else {
            return;
        };
        let (file, size) = (entry.ckpt.file, entry.ckpt.total_bytes());
        if let Some(store) = fleet.stores.get_mut(server) {
            store.prime_ssd(file, size);
        }
    }

    fn tier_load_counter(tier: Tier) -> &'static str {
        match tier {
            Tier::Hbm => "fleet.loads_hbm",
            Tier::Dram => "fleet.loads_dram",
            Tier::Ssd => "fleet.loads_ssd",
            Tier::Remote => "fleet.loads_remote",
        }
    }

    fn tier_sla_counter(tier: Tier, ok: bool) -> &'static str {
        match (tier, ok) {
            (Tier::Hbm, true) => "fleet.cold_sla_ok.hbm",
            (Tier::Hbm, false) => "fleet.cold_sla_miss.hbm",
            (Tier::Dram, true) => "fleet.cold_sla_ok.dram",
            (Tier::Dram, false) => "fleet.cold_sla_miss.dram",
            (Tier::Ssd, true) => "fleet.cold_sla_ok.ssd",
            (Tier::Ssd, false) => "fleet.cold_sla_miss.ssd",
            (Tier::Remote, true) => "fleet.cold_sla_ok.remote",
            (Tier::Remote, false) => "fleet.cold_sla_miss.remote",
        }
    }

    /// Routes one model-tagged arrival: hot models go straight to their
    /// least-loaded host, cold models start a checkpoint load and park the
    /// request behind it.
    fn fleet_dispatch(&mut self, now: SimTime, idx: u32, m: u32) {
        let state = {
            let Some(fleet) = self.fleet.as_ref() else {
                return;
            };
            if fleet.registry.entry(m).is_none() {
                // The gateway validates names, so an unknown index is a
                // driver bug; fail the request rather than wedge it.
                let Some(id) = self.arrivals[idx as usize].as_ref().map(|r| r.id) else {
                    return;
                };
                self.counters.incr("fleet.unknown_model");
                self.note_failed(now, id, "unknown_model");
                return;
            }
            fleet.registry.state(m)
        };
        let gen = self.slot_gen[idx as usize];
        match state {
            LoadState::Loaded => self.fleet_dispatch_hot(now, idx, m),
            LoadState::Loading => {
                if let Some(fleet) = self.fleet.as_mut() {
                    fleet.waiting.entry(m).or_default().push((idx, gen));
                }
                self.counters.incr("fleet.queued");
            }
            LoadState::Unloaded => {
                if self.start_model_load(now, m, false) {
                    if let Some(fleet) = self.fleet.as_mut() {
                        fleet.waiting.entry(m).or_default().push((idx, gen));
                    }
                    self.counters.incr("fleet.queued");
                } else {
                    // No routable TE (everything detected-down): park until
                    // a repair restores capacity, like the single-model path.
                    self.counters.incr("sim.dispatch_deferred");
                    self.sched(
                        now + self.fault_cfg.backoff_cap,
                        Event::Redispatch(idx, gen),
                    );
                }
            }
        }
    }

    fn fleet_dispatch_hot(&mut self, now: SimTime, idx: u32, m: u32) {
        let host = {
            let Some(fleet) = self.fleet.as_ref() else {
                return;
            };
            fleet
                .registry
                .hosts(m)
                .iter()
                .copied()
                .filter(|t| !self.tes[t.0 as usize].detected)
                .min_by_key(|&t| (self.tes[t.0 as usize].engine.load(), t))
        };
        let Some(host) = host else {
            // Defensive: detection removes hosts from the registry, so a
            // Loaded model always has a routable host. Back off if not.
            self.counters.incr("sim.dispatch_deferred");
            let gen = self.slot_gen[idx as usize];
            self.sched(
                now + self.fault_cfg.backoff_cap,
                Event::Redispatch(idx, gen),
            );
            return;
        };
        let load = self.tes[host.0 as usize].engine.load();
        let scale_out = {
            let Some(fleet) = self.fleet.as_mut() else {
                return;
            };
            // LRU touch: `m` is now this TE's most recently used model.
            let lru = &mut fleet.resident[host.0 as usize];
            if let Some(pos) = lru.iter().position(|&x| x == m) {
                lru.remove(pos);
                lru.push(m);
            }
            load >= fleet.cfg.scale_out_queue && !fleet.inflight.contains_key(&m)
        };
        if scale_out {
            // Queue pressure on the hottest replica: scale the model out.
            let _ = self.start_model_load(now, m, true);
        }
        self.counters.incr("fleet.dispatch_hot");
        let Some(req) = self.arrivals[idx as usize].clone() else {
            return;
        };
        let new = NewRequest {
            id: req.id,
            prompt: req.prompt.clone(),
            target_output: req.target_output,
            arrival: req.arrival,
            cache_id: req.cache_id,
        };
        self.submit_to(now, host, new);
    }

    /// Starts a checkpoint load for model `m` — a cold start, or a
    /// scale-out onto extra TEs when `scale_out`. Returns false when no TE
    /// can take the model right now (the caller defers the request).
    fn start_model_load(&mut self, now: SimTime, m: u32, scale_out: bool) -> bool {
        let (file, ckpt, hosts, mode) = {
            let Some(fleet) = self.fleet.as_ref() else {
                return false;
            };
            if fleet.inflight.contains_key(&m) {
                return true; // coalesce with the load already in flight
            }
            let Some(entry) = fleet.registry.entry(m) else {
                return false;
            };
            (
                entry.ckpt.file,
                entry.ckpt.clone(),
                fleet.registry.hosts(m).to_vec(),
                fleet.cfg.mode,
            )
        };
        let total = ckpt.total_bytes();
        // Candidates: routable TEs not already hosting `m`, annotated with
        // the storage tier holding the checkpoint on their server and the
        // current engine load. Tes iteration order is fixed, so placement
        // is deterministic.
        let mut candidates: Vec<(TeId, u8, usize)> = Vec::new();
        {
            let Some(fleet) = self.fleet.as_ref() else {
                return false;
            };
            for te in &self.tes {
                if te.detected || hosts.contains(&te.id) {
                    continue;
                }
                let tier = match mode {
                    // The baseline ignores local storage entirely.
                    ColdStartMode::PrewarmMiss => Tier::Remote,
                    _ => fleet.stores[te.npus[0].server].locate(file, ByteRange::new(0, total)),
                };
                candidates.push((te.id, tier.rank(), te.engine.load()));
            }
        }
        if candidates.is_empty() {
            return false;
        }
        // Locality-aware startup: the JE prefers TEs whose DRAM/SSD
        // already holds the checkpoint.
        let Some(primary) = self.je.place_cold_start(&candidates) else {
            return false;
        };
        let mut targets = vec![primary];
        if scale_out && mode == ColdStartMode::HierarchyMulticast {
            // Binary-tree multicast reaches several TEs in ~log2 rounds,
            // so one distribution wave installs up to three new replicas.
            candidates.sort_by_key(|&(te, rank, load)| (rank, load, te));
            for &(te, _, _) in candidates.iter().filter(|c| c.0 != primary).take(2) {
                targets.push(te);
            }
        }
        // Price the load: tier fault-in (or remote streaming) up front,
        // then the five-step scaling pipeline onto the NPUs.
        let (pre, path, tier) = match mode {
            ColdStartMode::PrewarmMiss => {
                let (latency, bandwidth) = {
                    let Some(fleet) = self.fleet.as_ref() else {
                        return false;
                    };
                    (fleet.cfg.remote.latency, fleet.cfg.remote.bandwidth)
                };
                let pre = latency + SimDuration::from_secs_f64(total as f64 / bandwidth);
                (pre, LoadPath::DramMiss, Tier::Remote)
            }
            _ if scale_out => {
                // Weights fork HBM-to-HBM from the live replicas; the
                // storage hierarchy is never touched.
                let path = if mode == ColdStartMode::HierarchyMulticast {
                    LoadPath::Multicast {
                        fanout: targets.len(),
                    }
                } else {
                    LoadPath::NpuForkRoce { fanout: 1 }
                };
                (SimDuration::ZERO, path, Tier::Hbm)
            }
            _ => {
                let server = self.tes[primary.0 as usize].npus[0].server;
                let Some(fleet) = self.fleet.as_mut() else {
                    return false;
                };
                let fb = fleet.stores[server].fault_in(file, ByteRange::new(0, total), total);
                let pre = fault_time(fb, &self.cfg.cluster.server, &fleet.cfg.remote);
                (pre, LoadPath::DramHit, fb.source)
            }
        };
        // A scale-out's source replica is busy (that is why we scale);
        // initial cold starts pull from storage, not a serving TE.
        let source = if scale_out {
            let busiest = hosts
                .iter()
                .filter(|t| !self.tes[t.0 as usize].detected)
                .map(|t| self.tes[t.0 as usize].engine.load())
                .max()
                .unwrap_or(0);
            let denom = {
                let Some(fleet) = self.fleet.as_ref() else {
                    return false;
                };
                fleet.cfg.scale_out_queue.max(1) as f64
            };
            SourceLoad {
                intensity: (busiest as f64 / denom).min(1.0),
            }
        } else {
            SourceLoad::idle()
        };
        let opts = {
            let Some(fleet) = self.fleet.as_ref() else {
                return false;
            };
            fleet.cfg.scaling
        };
        let scaling = ScalingModel::new(self.cfg.cluster.clone());
        let breakdown = scaling.breakdown(&ckpt, self.cfg.parallelism, opts, path, source);
        breakdown.emit_trace(&mut self.tracer, now + pre);
        let total_time = pre + breakdown.total();

        let span = if self.tracer.is_enabled() {
            self.tracer.start_span(
                now,
                "fleet.cold_start",
                vec![
                    ("model", m.into()),
                    ("target", primary.0.into()),
                    ("fanout", targets.len().into()),
                    ("tier", tier.as_str().into()),
                    ("scale_out", scale_out.into()),
                    ("pre_ms", pre.as_millis_f64().into()),
                    ("total_ms", total_time.as_millis_f64().into()),
                ],
            )
        } else {
            SpanId::NONE
        };
        self.counters.incr("fleet.cold_starts");
        self.counters.incr(Self::tier_load_counter(tier));
        let cs_id = self.metrics.samples("fleet.cold_start_ms");
        self.metrics.record(cs_id, total_time.as_millis_f64());

        let targets_ep: Vec<(TeId, u32)> = targets
            .iter()
            .map(|&t| (t, self.tes[t.0 as usize].epoch))
            .collect();
        {
            let Some(fleet) = self.fleet.as_mut() else {
                return false;
            };
            if !scale_out {
                fleet.registry.set_loading(m);
            }
            fleet.inflight.insert(
                m,
                InflightLoad {
                    targets: targets_ep,
                    tier,
                    span,
                },
            );
        }
        self.sched(now + total_time, Event::ModelReady(m));
        true
    }

    /// A fleet checkpoint load lands: install the model on every target
    /// that survived the load window, then drain the queue behind it.
    fn on_model_ready(&mut self, now: SimTime, m: u32) {
        let Some(load) = self.fleet.as_mut().and_then(|f| f.inflight.remove(&m)) else {
            return;
        };
        self.tracer.end_span(now, load.span);
        let valid: Vec<TeId> = load
            .targets
            .iter()
            .filter(|&&(te, epoch)| {
                let t = &self.tes[te.0 as usize];
                t.alive && !t.detected && t.epoch == epoch
            })
            .map(|&(te, _)| te)
            .collect();
        if valid.is_empty() {
            // Every target crashed mid-load; the checkpoint never lands.
            // Waiters re-dispatch immediately and the first one restarts
            // the load on whatever capacity remains.
            self.counters.incr("fleet.loads_aborted");
            let waiters = {
                let Some(fleet) = self.fleet.as_mut() else {
                    return;
                };
                fleet.registry.abort_loading(m);
                fleet.waiting.remove(&m).unwrap_or_default()
            };
            for (idx, gen) in waiters {
                self.sched(now, Event::Redispatch(idx, gen));
            }
            return;
        }
        for &te in &valid {
            if let Some(fleet) = self.fleet.as_mut() {
                fleet.registry.set_loaded(m, te);
            }
            self.fleet_install(now, te, m);
        }
        self.counters
            .add("fleet.replicas_added", valid.len() as u64);
        let (waiters, sla) = {
            let Some(fleet) = self.fleet.as_mut() else {
                return;
            };
            (
                fleet.waiting.remove(&m).unwrap_or_default(),
                fleet.cfg.cold_sla,
            )
        };
        for (idx, gen) in waiters {
            if self.slot_gen[idx as usize] != gen {
                continue; // reached a terminal state while parked
            }
            let Some(req) = &self.arrivals[idx as usize] else {
                continue;
            };
            let wait = now.since(req.arrival);
            let wid = self.metrics.samples("fleet.cold_wait_ms");
            self.metrics.record(wid, wait.as_millis_f64());
            self.counters
                .incr(Self::tier_sla_counter(load.tier, wait <= sla));
            self.dispatch(now, idx);
        }
    }

    /// Pins `m` into `te`'s HBM residency, evicting LRU models past the
    /// per-TE weight budget (never the model just installed).
    fn fleet_install(&mut self, now: SimTime, te: TeId, m: u32) {
        let idx = te.0 as usize;
        let mut evicted: Vec<u32> = Vec::new();
        {
            let Some(fleet) = self.fleet.as_mut() else {
                return;
            };
            let bytes = fleet.registry.entry(m).map_or(0, |e| e.spec.weight_bytes());
            let lru = &mut fleet.resident[idx];
            if let Some(pos) = lru.iter().position(|&x| x == m) {
                lru.remove(pos);
            } else {
                fleet.resident_bytes[idx] += bytes;
            }
            lru.push(m);
            while fleet.resident_bytes[idx] > fleet.te_budget && fleet.resident[idx].len() > 1 {
                let victim = fleet.resident[idx].remove(0);
                let vb = fleet
                    .registry
                    .entry(victim)
                    .map_or(0, |e| e.spec.weight_bytes());
                fleet.resident_bytes[idx] = fleet.resident_bytes[idx].saturating_sub(vb);
                fleet.registry.remove_host(victim, te);
                evicted.push(victim);
            }
        }
        for victim in evicted {
            self.counters.incr("fleet.evictions");
            if self.tracer.is_enabled() {
                self.tracer.event(
                    now,
                    "fleet.evicted",
                    vec![("model", victim.into()), ("te", te.0.into())],
                );
            }
        }
    }

    /// Completed / submitted counts (for progress checks in tests).
    pub fn progress(&self) -> (u64, u64) {
        (self.completed, self.submitted)
    }

    /// Requests that failed permanently (always zero without faults).
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Whether TE `te` is currently up (for tests and benches).
    pub fn is_alive(&self, te: TeId) -> bool {
        self.tes[te.0 as usize].alive
    }

    /// Sum of every live engine's statistics (benches/diagnostics). The
    /// `iterations` total counts logical iterations, so it is invariant
    /// under fast-forward — a useful cross-check that macro-stepping did
    /// the same work.
    pub fn engine_stats_total(&self) -> flowserve::EngineStats {
        let mut total = flowserve::EngineStats::default();
        for te in &self.tes {
            let s = te.engine.stats();
            total.iterations += s.iterations;
            total.busy += s.busy;
            total.output_tokens += s.output_tokens;
            total.finished += s.finished;
            total.preemptions += s.preemptions;
            total.ff_windows += s.ff_windows;
            total.ff_iterations += s.ff_iterations;
        }
        total
    }
}
