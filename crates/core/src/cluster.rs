//! The serving-cluster simulation: Job Executors dispatching onto a pool of
//! FlowServe TEs over the NPU fabric.
//!
//! This is where everything composes (Figure 1): arrivals hit the JE's
//! distributed scheduler (Algorithm 1), colocated TEs serve whole requests,
//! disaggregated pairs run prefill then migrate KV over DistFlow/fabric to
//! the decode TE, populate transfers stream KV from host DRAM over each
//! TE's PCIe channel, and the JE's global prompt trees stay in sync with
//! TE-side cache insertions.

use crate::api::ApiRequest;
use crate::heatmap::Heatmap;
use crate::je::{Decision, JobExecutor, Policy, SchedPool, Target, TeSnapshot};
use crate::predictor::{DecodePredictor, FixedAccuracy, Oracle};
use crate::prompt_tree::TeId;
use flowserve::{
    BufferInfo, DistFlow, Engine, EngineConfig, EngineEvent, EngineMode, MemTier, NewRequest,
    PopulateTicket, RequestId,
};
use llm_model::{ExecCostModel, ModelSpec, Parallelism};
use npu::fabric::{Fabric, TransferId};
use npu::specs::{ClusterSpec, NpuId};
use simcore::trace::{SpanId, Trace, TraceLevel, Tracer};
use simcore::{Clock, Counters, FifoChannel, LatencyStats, MetricsRegistry, SimDuration, SimTime};
use std::collections::HashMap;

/// Role of one TE in the serving pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum TeRole {
    /// PD-colocated engine.
    Colocated,
    /// Prefill half of a disaggregated pair.
    Prefill,
    /// Decode half of a disaggregated pair.
    Decode,
}

/// Cluster-simulation configuration.
pub struct ClusterConfig {
    /// Hardware.
    pub cluster: ClusterSpec,
    /// Model every TE serves.
    pub model: ModelSpec,
    /// Engine parallelism (the paper's serving tests use TP=4).
    pub parallelism: Parallelism,
    /// Engine template; `mode` is overridden per role.
    pub engine: EngineConfig,
    /// JE scheduling policy.
    pub policy: Policy,
    /// Decode-length predictor accuracy; `None` = oracle.
    pub predictor_accuracy: Option<f64>,
    /// PD heatmap for the PD-aware policy.
    pub heatmap: Heatmap,
    /// Fraction of a migrated KV transfer overlapped with prefill
    /// (by-layer streaming; 0.0 = pure by-req transfer after prefill).
    pub kv_transfer_overlap: f64,
    /// RNG seed (predictor noise).
    pub seed: u64,
}

impl ClusterConfig {
    /// The paper's standard serving testbed: a Gen2 cluster serving the
    /// internal 34B model at TP=4 with the combined policy.
    pub fn standard_34b() -> Self {
        ClusterConfig {
            cluster: ClusterSpec::gen2_cluster(4),
            model: ModelSpec::internal_34b(),
            parallelism: Parallelism::tp(4),
            engine: EngineConfig::colocated(),
            policy: Policy::Combined,
            predictor_accuracy: Some(0.9),
            heatmap: Heatmap::default_production(),
            kv_transfer_overlap: 0.8,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(u32),
    Wake(TeId),
    Populate(TeId, PopulateTicket),
    FabricAdvance,
}

struct Te {
    id: TeId,
    role: TeRole,
    engine: Engine,
    npus: Vec<NpuId>,
    /// Host-DRAM -> HBM channel for populate transfers.
    pcie: FifoChannel,
    scheduled_wake: Option<SimTime>,
}

struct Migration {
    new: NewRequest,
    from: TeId,
    to: TeId,
    kv_tokens: usize,
    first_token_at: SimTime,
    /// Trace span covering the transfer (NONE when tracing is off).
    span: SpanId,
}

/// Per-run results.
#[derive(Debug, Default)]
pub struct RunReport {
    /// End-to-end latency metrics across completed requests.
    pub latency: LatencyStats,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// Event counters.
    pub counters: Counters,
    /// Per-TE busy time.
    pub te_busy: Vec<(TeId, SimDuration)>,
    /// Merged sim-time trace (empty unless [`ClusterSim::enable_tracing`]
    /// was called). Components: `cluster`, `je`, `distflow`, `te<N>`, `rtc`.
    pub trace: Trace,
    /// Named metrics: counters from every component plus `cluster.ttft_ms`
    /// / `cluster.tpot_ms` / `cluster.jct_ms` samples and the
    /// `cluster.queue_depth` series.
    pub metrics: MetricsRegistry,
}

impl RunReport {
    /// Decode throughput over the makespan (tokens/s).
    pub fn throughput(&self) -> f64 {
        self.latency.decode_throughput(self.makespan)
    }
}

/// The serving cluster.
pub struct ClusterSim {
    cfg: ClusterConfig,
    clock: Clock<Event>,
    fabric: Fabric,
    fabric_wake: Option<SimTime>,
    tes: Vec<Te>,
    pairs: Vec<(TeId, TeId)>,
    je: JobExecutor,
    arrivals: Vec<ApiRequest>,
    /// Disaggregated routing: request -> decode TE.
    decode_route: HashMap<RequestId, TeId>,
    /// Prompt + metadata stash for requests in the prefill half.
    pending_migration: HashMap<RequestId, NewRequest>,
    in_flight_migrations: HashMap<TransferId, Migration>,
    latency: LatencyStats,
    counters: Counters,
    first_arrival: Option<SimTime>,
    last_completion: SimTime,
    completed: u64,
    submitted: u64,
    /// KV-transfer planning layer; linked over the TE head NPUs.
    distflow: DistFlow,
    tracer: Tracer,
    metrics: MetricsRegistry,
}

impl ClusterSim {
    /// Builds a cluster with the given TE roles placed round-robin across
    /// servers (`world_size` NPUs each, packed per server).
    ///
    /// # Panics
    ///
    /// Panics if the hardware cannot host all TEs, or if prefill/decode
    /// roles are unpaired.
    pub fn new(cfg: ClusterConfig, roles: &[TeRole]) -> Self {
        let world = cfg.parallelism.world_size() as usize;
        let per_server = cfg.cluster.server.chips_per_server / world;
        assert!(per_server >= 1, "one TE needs {world} NPUs per server");
        let capacity = cfg.cluster.num_servers * per_server;
        assert!(
            roles.len() <= capacity,
            "cluster fits {capacity} TEs, asked for {}",
            roles.len()
        );

        let mut tes = Vec::new();
        for (i, &role) in roles.iter().enumerate() {
            let server = i / per_server;
            let first_chip = (i % per_server) * world;
            let npus: Vec<NpuId> = (0..world)
                .map(|k| NpuId::new(server, first_chip + k))
                .collect();
            let mode = match role {
                TeRole::Colocated => EngineMode::Colocated,
                TeRole::Prefill => EngineMode::PrefillOnly,
                TeRole::Decode => EngineMode::DecodeOnly,
            };
            let engine_cfg = EngineConfig {
                mode,
                prefill_chunk_tokens: if role == TeRole::Prefill {
                    4096
                } else {
                    cfg.engine.prefill_chunk_tokens
                },
                ..cfg.engine.clone()
            };
            let cost = ExecCostModel::new(
                cfg.cluster.server.chip.clone(),
                cfg.cluster.hccs,
                cfg.model.clone(),
                cfg.parallelism,
            );
            tes.push(Te {
                id: TeId(i as u32),
                role,
                engine: Engine::new(engine_cfg, cost),
                npus,
                pcie: FifoChannel::new(
                    cfg.cluster.server.pcie_bw_per_npu(world.min(8)) * world as f64,
                    SimDuration::from_micros(100),
                ),
                scheduled_wake: None,
            });
        }

        // Pair prefill and decode TEs in order of appearance; a decode TE
        // may back several prefill TEs (the paper's 2P1D setup).
        let prefills: Vec<TeId> = tes
            .iter()
            .filter(|t| t.role == TeRole::Prefill)
            .map(|t| t.id)
            .collect();
        let decodes: Vec<TeId> = tes
            .iter()
            .filter(|t| t.role == TeRole::Decode)
            .map(|t| t.id)
            .collect();
        assert!(
            prefills.is_empty() == decodes.is_empty(),
            "prefill TEs require decode TEs and vice versa"
        );
        let pairs: Vec<(TeId, TeId)> = prefills
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, decodes[i % decodes.len()]))
            .collect();

        let predictor: Box<dyn DecodePredictor> = match cfg.predictor_accuracy {
            None => Box::new(Oracle),
            Some(a) => Box::new(FixedAccuracy::new(a, cfg.seed ^ 0x9e37)),
        };
        let je = JobExecutor::new(
            cfg.policy,
            cfg.heatmap.clone(),
            predictor,
            cfg.engine.block_size,
        );
        let fabric = Fabric::new(cfg.cluster.clone());
        // DistFlow control plane: link every TE's head NPU with every other
        // (the paper's LinkCluster over the serving pool).
        let mut distflow = DistFlow::new(
            cfg.cluster.server.chip.generation == npu::specs::Generation::Gen3SuperPod,
        );
        let heads: Vec<NpuId> = tes.iter().map(|t| t.npus[0]).collect();
        distflow.link_cluster(&heads);
        ClusterSim {
            cfg,
            clock: Clock::new(),
            fabric,
            fabric_wake: None,
            tes,
            pairs,
            je,
            arrivals: Vec::new(),
            decode_route: HashMap::new(),
            pending_migration: HashMap::new(),
            in_flight_migrations: HashMap::new(),
            latency: LatencyStats::new(),
            counters: Counters::new(),
            first_arrival: None,
            last_completion: SimTime::ZERO,
            completed: 0,
            submitted: 0,
            distflow,
            tracer: Tracer::disabled(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Turns on sim-time tracing across the whole cluster: the sim itself,
    /// the JE's scheduling decisions, DistFlow transfer plans, and every
    /// TE's engine + RTC. `capacity` bounds each component's span and event
    /// ring buffers.
    pub fn enable_tracing(&mut self, level: TraceLevel, capacity: usize) {
        self.tracer = Tracer::enabled(level, capacity);
        self.je.enable_tracing(level, capacity);
        self.distflow.enable_tracing(level, capacity);
        for te in &mut self.tes {
            te.engine.enable_tracing(level, capacity);
        }
    }

    /// The TE roles in play.
    pub fn roles(&self) -> Vec<(TeId, TeRole)> {
        self.tes.iter().map(|t| (t.id, t.role)).collect()
    }

    /// Queues a workload (arrivals must be time-sorted).
    ///
    /// # Panics
    ///
    /// Panics if arrivals are out of order.
    pub fn inject(&mut self, requests: Vec<ApiRequest>) {
        let mut last = SimTime::ZERO;
        for r in &requests {
            assert!(r.arrival >= last, "arrivals must be sorted by time");
            last = r.arrival;
        }
        for (i, r) in requests.into_iter().enumerate() {
            let at = r.arrival;
            let idx = self.arrivals.len() as u32;
            self.arrivals.push(r);
            self.clock.schedule(at, Event::Arrival(idx));
            let _ = i;
        }
    }

    /// Runs until all injected requests complete (or nothing can progress).
    pub fn run_to_completion(&mut self) -> RunReport {
        let mut guard: u64 = 0;
        while let Some((now, ev)) = self.clock.next() {
            self.handle(now, ev);
            guard += 1;
            assert!(
                guard < 200_000_000,
                "cluster sim exceeded event budget (livelock?)"
            );
        }
        self.report()
    }

    fn report(&mut self) -> RunReport {
        let start = self.first_arrival.unwrap_or(SimTime::ZERO);
        let makespan = self.last_completion.since(start.min(self.last_completion));
        let mut latency = LatencyStats::new();
        std::mem::swap(&mut latency, &mut self.latency);

        // Merge every component's trace into one timeline.
        let mut trace = Trace::default();
        trace.absorb("cluster", self.tracer.take());
        trace.absorb("je", self.je.take_trace());
        trace.absorb("distflow", self.distflow.take_trace());
        for i in 0..self.tes.len() {
            let component = format!("te{i}");
            let t = self.tes[i].engine.take_trace();
            trace.absorb(&component, t);
        }

        // Fold all counters into the registry (values accumulate across
        // report() calls on the same sim, matching Counters semantics).
        let mut metrics = std::mem::take(&mut self.metrics);
        metrics.import_counters(&self.counters);
        metrics.import_counters(self.je.counters());
        metrics.import_counters(self.distflow.counters());
        for te in &self.tes {
            metrics.import_counters(te.engine.counters());
            metrics.import_counters(te.engine.rtc().counters());
        }
        let busy_id = metrics.samples("cluster.te_busy_s");
        for te in &self.tes {
            metrics.record(busy_id, te.engine.stats().busy.as_secs_f64());
        }

        RunReport {
            latency,
            makespan,
            counters: self.counters.clone(),
            te_busy: self
                .tes
                .iter()
                .map(|t| (t.id, t.engine.stats().busy))
                .collect(),
            trace,
            metrics,
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrival(idx) => self.on_arrival(now, idx),
            Event::Wake(te) => self.on_wake(now, te),
            Event::Populate(te, ticket) => {
                self.te_mut(te).engine.populate_transfer_done(now, ticket);
                self.reschedule_wake(now, te);
            }
            Event::FabricAdvance => self.on_fabric(now),
        }
    }

    fn te_mut(&mut self, id: TeId) -> &mut Te {
        &mut self.tes[id.0 as usize]
    }

    fn sched_pool(&self) -> SchedPool {
        let mut pool = SchedPool::default();
        for t in &self.tes {
            if t.role == TeRole::Colocated {
                pool.colocated.push(t.id);
            }
            pool.loads.insert(
                t.id,
                TeSnapshot {
                    load: t.engine.load(),
                },
            );
        }
        pool.pairs = self.pairs.clone();
        pool
    }

    fn on_arrival(&mut self, now: SimTime, idx: u32) {
        let req = self.arrivals[idx as usize].clone();
        self.first_arrival = Some(self.first_arrival.unwrap_or(now).min(now));
        let pool = self.sched_pool();
        if self.tracer.is_enabled() {
            self.tracer.event(
                now,
                "arrival",
                vec![
                    ("req", req.id.0.into()),
                    ("prompt_tokens", req.prompt.len().into()),
                    ("target_output", req.target_output.into()),
                ],
            );
            let depth: usize = self.tes.iter().map(|t| t.engine.queue_len()).sum();
            let qid = self.metrics.series("cluster.queue_depth");
            self.metrics.record_at(qid, now, depth as f64);
        }
        let decision: Decision = self.je.schedule(now, &req, &pool);
        self.submitted += 1;
        let new = NewRequest {
            id: req.id,
            prompt: req.prompt.clone(),
            target_output: req.target_output,
            arrival: req.arrival,
            cache_id: req.cache_id,
        };
        match decision.target {
            Target::Colocated(te_id) => {
                self.counters.incr("sim.routed_colocated");
                self.submit_to(now, te_id, new);
            }
            Target::Disaggregated { prefill, decode } => {
                self.counters.incr("sim.routed_disaggregated");
                self.decode_route.insert(req.id, decode);
                self.pending_migration.insert(req.id, new.clone());
                self.submit_to(now, prefill, new);
            }
        }
    }

    fn submit_to(&mut self, now: SimTime, te_id: TeId, new: NewRequest) {
        let world = self.cfg.parallelism.world_size() as u64;
        let kv_bytes_tok = self.cfg.model.kv_bytes_per_token();
        let outcome = {
            let te = self.te_mut(te_id);
            te.engine.submit(now, new)
        };
        if !outcome.accepted {
            self.counters.incr("sim.rejected");
        }
        if let Some(p) = outcome.populate {
            // Populate streams each rank's slice in parallel; the channel
            // is sized for the aggregate, so charge total bytes.
            let bytes = p.tokens as u64 * kv_bytes_tok;
            let te = self.te_mut(te_id);
            let done = te.pcie.enqueue(now, bytes);
            self.clock.schedule(done, Event::Populate(te_id, p.ticket));
            let _ = world;
        }
        self.reschedule_wake(now, te_id);
    }

    fn reschedule_wake(&mut self, now: SimTime, te_id: TeId) {
        let wake = {
            let te = self.te_mut(te_id);
            te.engine.next_wake(now)
        };
        let Some(wake) = wake else { return };
        let te = self.te_mut(te_id);
        // Dedup: skip if an equal-or-earlier wake is already scheduled.
        if te.scheduled_wake.is_some_and(|w| w <= wake && w >= now) {
            return;
        }
        te.scheduled_wake = Some(wake);
        self.clock.schedule(wake.max_of(now), Event::Wake(te_id));
    }

    fn on_wake(&mut self, now: SimTime, te_id: TeId) {
        {
            let te = self.te_mut(te_id);
            if te.scheduled_wake == Some(now) {
                te.scheduled_wake = None;
            }
        }
        let events = {
            let te = self.te_mut(te_id);
            te.engine.advance(now)
        };
        for ev in events {
            self.on_engine_event(now, te_id, ev);
        }
        self.reschedule_wake(now, te_id);
    }

    fn on_engine_event(&mut self, now: SimTime, te_id: TeId, ev: EngineEvent) {
        match ev {
            EngineEvent::FirstToken { id, at } => {
                // Cache insertion happened inside the engine; sync the JE
                // tree for locality scheduling.
                let role = self.tes[te_id.0 as usize].role;
                if role == TeRole::Colocated {
                    if let Some(new) = self.arrival_prompt(id) {
                        self.je.note_cached(now, te_id, false, &new);
                    }
                }
                let _ = at;
            }
            EngineEvent::PrefillComplete { id, at, kv_tokens } => {
                let role = self.tes[te_id.0 as usize].role;
                debug_assert_eq!(role, TeRole::Prefill);
                if let Some(prompt) = self.arrival_prompt(id) {
                    self.je.note_cached(now, te_id, true, &prompt);
                }
                self.start_migration(now, te_id, id, kv_tokens, at);
            }
            EngineEvent::Finished { latency, .. } => {
                let ttft_id = self.metrics.samples("cluster.ttft_ms");
                self.metrics.record(ttft_id, latency.ttft.as_millis_f64());
                let tpot_id = self.metrics.samples("cluster.tpot_ms");
                self.metrics.record(tpot_id, latency.tpot.as_millis_f64());
                let jct_id = self.metrics.samples("cluster.jct_ms");
                self.metrics.record(jct_id, latency.jct.as_millis_f64());
                self.latency.record(latency);
                self.completed += 1;
                self.last_completion = now;
                self.counters.incr("sim.completed");
            }
            EngineEvent::Rejected { .. } => {
                self.counters.incr("sim.rejected");
            }
        }
    }

    fn arrival_prompt(&self, id: RequestId) -> Option<Vec<flowserve::TokenId>> {
        self.arrivals
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.prompt.clone())
    }

    fn start_migration(
        &mut self,
        now: SimTime,
        from: TeId,
        id: RequestId,
        kv_tokens: usize,
        first_token_at: SimTime,
    ) {
        let Some(to) = self.decode_route.remove(&id) else {
            // No route (e.g. context-cache-create): release immediately.
            self.te_mut(from).engine.release_migrated(now, id);
            return;
        };
        let Some(new) = self.pending_migration.remove(&id) else {
            // Metadata lost (bookkeeping bug): loud in debug builds; in
            // release, free the prefill TE's copy instead of wedging it.
            debug_assert!(false, "disaggregated request {id:?} lacks stashed metadata");
            self.te_mut(from).engine.release_migrated(now, id);
            return;
        };
        // By-layer streaming overlaps most of the transfer with prefill;
        // only the residual tail is exposed (§4.5: "by-req or by-layer").
        let total_bytes = kv_tokens as u64 * self.cfg.model.kv_bytes_per_token();
        let exposed = (total_bytes as f64 * (1.0 - self.cfg.kv_transfer_overlap)).max(1.0) as u64;
        let src = self.tes[from.0 as usize].npus[0];
        let dst = self.tes[to.0 as usize].npus[0];
        // Plan the move through DistFlow (backend selection + occupancy
        // accounting); the fabric then spends the simulated time.
        let link_kind = self.fabric.link_kind(src, dst);
        // TE head NPUs are linked by `DistFlow::link_cluster` at
        // construction, so planning can only fail if that wiring changes.
        let plan = match self.distflow.transfer_at(
            now,
            BufferInfo {
                npu: src,
                tier: MemTier::Hbm,
                bytes: total_bytes,
            },
            BufferInfo {
                npu: dst,
                tier: MemTier::Hbm,
                bytes: total_bytes,
            },
            link_kind,
        ) {
            Ok(plan) => plan,
            Err(e) => {
                debug_assert!(false, "unlinked TE pair {src:?} -> {dst:?}: {e:?}");
                self.te_mut(from).engine.release_migrated(now, id);
                return;
            }
        };
        let tid = self.fabric.start_transfer(now, src, dst, exposed);
        let span = if self.tracer.is_enabled() {
            self.tracer.start_span(
                now,
                "kv_migration",
                vec![
                    ("req", id.0.into()),
                    ("from_te", from.0.into()),
                    ("to_te", to.0.into()),
                    ("kv_tokens", kv_tokens.into()),
                    ("total_bytes", total_bytes.into()),
                    ("exposed_bytes", exposed.into()),
                    ("crosses_fabric", plan.crosses_fabric.into()),
                ],
            )
        } else {
            SpanId::NONE
        };
        self.in_flight_migrations.insert(
            tid,
            Migration {
                new,
                from,
                to,
                kv_tokens,
                first_token_at,
                span,
            },
        );
        self.counters.incr("sim.kv_migrations");
        self.counters.add("sim.kv_bytes_migrated", total_bytes);
        self.schedule_fabric(now);
    }

    fn schedule_fabric(&mut self, now: SimTime) {
        let Some(next) = self.fabric.next_event(now) else {
            return;
        };
        if self.fabric_wake.is_some_and(|w| w <= next && w >= now) {
            return;
        }
        self.fabric_wake = Some(next);
        self.clock.schedule(next.max_of(now), Event::FabricAdvance);
    }

    fn on_fabric(&mut self, now: SimTime) {
        if self.fabric_wake == Some(now) {
            self.fabric_wake = None;
        }
        let done = self.fabric.advance_to(now);
        for tid in done {
            let Some(m) = self.in_flight_migrations.remove(&tid) else {
                continue;
            };
            self.tracer.end_span(now, m.span);
            self.te_mut(m.from).engine.release_migrated(now, m.new.id);
            let to = m.to;
            {
                let te = self.te_mut(to);
                te.engine
                    .submit_with_kv(now, m.new, m.kv_tokens, m.first_token_at);
            }
            self.reschedule_wake(now, m.from);
            self.reschedule_wake(now, to);
        }
        self.schedule_fabric(now);
    }

    /// Completed / submitted counts (for progress checks in tests).
    pub fn progress(&self) -> (u64, u64) {
        (self.completed, self.submitted)
    }
}
