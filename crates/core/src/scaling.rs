//! Fast scaling: the five-step pipeline (Table 2), its optimizations, and
//! the TE-Load paths (local loading vs NPU-fork) — §6 of the paper.
//!
//! | # | Step         | Baseline issue            | Optimization            |
//! |---|--------------|---------------------------|-------------------------|
//! | 1 | Scaler-Pre   | pod allocation is slow    | pre-warmed pods         |
//! | 2 | TE-Pre-Load  | Python/NPU init is slow   | late import, parallel   |
//! |   |              |                           | init, pre-warmed TEs    |
//! | 3 | TE-Load      | model weights are large   | DRAM pre-load, NPU-fork |
//! | 4 | TE-Post-Load | warmup + block alloc slow | offline profiling,      |
//! |   |              |                           | async alloc, dummy req  |
//! | 5 | Scaler-Post  | TE-list retrieval polling | proactive pushing       |

use llm_model::{weights::TENSOR_INIT, Checkpoint, Parallelism};
use npu::hccl;
use npu::pagecache::PageCache;
use npu::specs::{ClusterSpec, LinkSpec};
use serde::Serialize;
use simcore::trace::{SpanId, Tracer};
use simcore::{SimDuration, SimTime};

/// Which optimizations are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ScalingOptimizations {
    /// Reserve pre-warmed pods (workload-independent, infra-managed).
    pub prewarmed_pods: bool,
    /// Reserve pre-warmed TEs (model- and parallelism-agnostic SPMD
    /// master/executor pools).
    pub prewarmed_tes: bool,
    /// Late importing + parallel initialization in TE-Pre-Load ("optimized
    /// this step by approximately 35%").
    pub late_import_parallel_init: bool,
    /// Predictive DRAM pre-loading of checkpoints into the page cache.
    pub dram_preload: bool,
    /// NPU-fork: pull weights from a running TE over NPU-to-NPU links.
    pub npu_fork: bool,
    /// Offline-profiled HBM budgets instead of warmup profiling.
    pub offline_profiling: bool,
    /// Asynchronous CPU/NPU block allocation.
    pub async_block_alloc: bool,
    /// Dummy request post-startup (hides first-request slowdown).
    pub dummy_warmup: bool,
    /// Cluster manager pushes new TE lists to JEs instead of polling.
    pub proactive_push: bool,
}

impl ScalingOptimizations {
    /// Everything off — the "before" bars of Figure 8.
    pub fn none() -> Self {
        ScalingOptimizations {
            prewarmed_pods: false,
            prewarmed_tes: false,
            late_import_parallel_init: false,
            dram_preload: false,
            npu_fork: false,
            offline_profiling: false,
            async_block_alloc: false,
            dummy_warmup: false,
            proactive_push: false,
        }
    }

    /// Everything on — the "after" bars of Figure 8.
    pub fn all() -> Self {
        ScalingOptimizations {
            prewarmed_pods: true,
            prewarmed_tes: true,
            late_import_parallel_init: true,
            dram_preload: true,
            npu_fork: true,
            offline_profiling: true,
            async_block_alloc: true,
            dummy_warmup: true,
            proactive_push: true,
        }
    }
}

/// How TE-Load gets the weights onto the NPUs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum LoadPath {
    /// Stream from the local DRAM page cache over PCIe (pre-load hit).
    DramHit,
    /// Fault from local SSD (pre-load miss).
    DramMiss,
    /// Broadcast from a running TE over the scale-up fabric.
    NpuForkHccs {
        /// Simultaneous target TE count.
        fanout: usize,
    },
    /// Broadcast from a running TE over the scale-out fabric.
    NpuForkRoce {
        /// Simultaneous target TE count.
        fanout: usize,
    },
    /// λScale-style binary-tree multicast from a running TE: every TE
    /// that has received the weights immediately re-sends them, so the
    /// served population doubles each round and `fanout` targets finish
    /// in `ceil(log2(fanout + 1))` point-to-point rounds over the
    /// scale-out fabric.
    Multicast {
        /// Simultaneous target TE count.
        fanout: usize,
    },
}

/// What the NPU-fork source TE is busy doing (Figure 10 b/c sensitivity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SourceLoad {
    /// 0.0 = idle source, 1.0 = fully busy with prefill/decode.
    pub intensity: f64,
}

impl SourceLoad {
    /// An idle source TE.
    pub fn idle() -> Self {
        SourceLoad { intensity: 0.0 }
    }
}

/// Per-step durations of one scale-up.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ScalingBreakdown {
    /// Step 1: pod creation.
    pub scaler_pre: SimDuration,
    /// Step 2: engine launch without model loading.
    pub te_pre_load: SimDuration,
    /// Step 3: weights onto NPUs.
    pub te_load: SimDuration,
    /// Step 4: engine ready to serve.
    pub te_post_load: SimDuration,
    /// Step 5: TE announced, first request routable.
    pub scaler_post: SimDuration,
    /// Extra latency the *first* request pays (when warmup is skipped and
    /// no dummy request was sent).
    pub first_request_penalty: SimDuration,
}

impl ScalingBreakdown {
    /// End-to-end scale-up latency (excluding the first-request penalty,
    /// which lands on the request, not the pipeline).
    pub fn total(&self) -> SimDuration {
        self.scaler_pre + self.te_pre_load + self.te_load + self.te_post_load + self.scaler_post
    }

    /// Records this scale-up as a `scale_up` span starting at `start` with
    /// the five Table 2 steps as contiguous child spans. Returns the parent
    /// span id ([`SpanId::NONE`] when the tracer is disabled).
    pub fn emit_trace(&self, tracer: &mut Tracer, start: SimTime) -> SpanId {
        if !tracer.is_enabled() {
            return SpanId::NONE;
        }
        let parent = tracer.start_span(
            start,
            "scale_up",
            vec![
                ("total_ns", self.total().as_nanos().into()),
                (
                    "first_request_penalty_ns",
                    self.first_request_penalty.as_nanos().into(),
                ),
            ],
        );
        let steps: [(&'static str, SimDuration); 5] = [
            ("scaler_pre", self.scaler_pre),
            ("te_pre_load", self.te_pre_load),
            ("te_load", self.te_load),
            ("te_post_load", self.te_post_load),
            ("scaler_post", self.scaler_post),
        ];
        let mut at = start;
        for (label, dur) in steps {
            let child = tracer.start_child(at, label, parent, vec![]);
            at += dur;
            tracer.end_span(at, child);
        }
        tracer.end_span(at, parent);
        parent
    }
}

// ---- Calibrated baseline step costs ----
// These mirror the relative magnitudes in Figure 8: TE-Pre-Load dominates,
// pod allocation and warmup are tens of seconds unoptimized, announcement
// is a polling interval.

/// Kubernetes-style pod allocation + container start, cold.
const SCALER_PRE_COLD: SimDuration = SimDuration::from_millis(30_000);
/// Attaching a pre-warmed pod.
const SCALER_PRE_WARM: SimDuration = SimDuration::from_millis(300);
/// Python import + NPU context init + HCCL mesh setup, cold.
const TE_PRE_LOAD_COLD: SimDuration = SimDuration::from_millis(40_000);
/// Late-import/parallel-init factor (§6.1: "approximately 35%").
const TE_PRE_LOAD_OPT_FACTOR: f64 = 0.65;
/// Adapting a pre-warmed TE (bind model-specific params, join group).
const TE_PRE_LOAD_WARM: SimDuration = SimDuration::from_millis(500);
/// Warmup profiling pass for HBM sizing, cold.
const WARMUP_PROFILE: SimDuration = SimDuration::from_millis(12_000);
/// Reading offline-profiled budgets from config.
const OFFLINE_PROFILE_READ: SimDuration = SimDuration::from_millis(200);
/// Synchronous CPU/NPU block allocation.
const BLOCK_ALLOC_SYNC: SimDuration = SimDuration::from_millis(2_000);
/// Async block allocation's residual on the critical path.
const BLOCK_ALLOC_ASYNC: SimDuration = SimDuration::from_millis(50);
/// The dummy post-startup request.
const DUMMY_REQUEST: SimDuration = SimDuration::from_millis(300);
/// First real request's extra cost when no warmup at all happened.
const FIRST_REQUEST_COLD_PENALTY: SimDuration = SimDuration::from_millis(1_500);
/// JE TE-list polling interval (expected wait = half).
const TE_LIST_POLL_EXPECTED: SimDuration = SimDuration::from_millis(2_500);
/// Proactive push latency.
const PROACTIVE_PUSH: SimDuration = SimDuration::from_millis(50);
/// NPU-fork control-plane setup (notify source, LinkCluster, handshake).
const NPU_FORK_SETUP: SimDuration = SimDuration::from_millis(150);
/// Source-contention ceiling: dedicated AICPU keeps the slowdown small
/// even under a fully busy source (Figure 10 b/c).
const FORK_CONTENTION_MAX: f64 = 0.08;
/// Multicast tree control plane: building the distribution tree and
/// handing each round its peer list (λScale's coordinator step).
const MULTICAST_SETUP: SimDuration = SimDuration::from_millis(200);

/// Prices scale-up operations for one cluster.
#[derive(Debug, Clone)]
pub struct ScalingModel {
    cluster: ClusterSpec,
}

impl ScalingModel {
    /// Creates a model for the cluster.
    pub fn new(cluster: ClusterSpec) -> Self {
        ScalingModel { cluster }
    }

    /// The cluster being scaled.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Step 1: Scaler-Pre.
    pub fn scaler_pre(&self, opts: ScalingOptimizations) -> SimDuration {
        if opts.prewarmed_pods {
            SCALER_PRE_WARM
        } else {
            SCALER_PRE_COLD
        }
    }

    /// Step 2: TE-Pre-Load.
    pub fn te_pre_load(&self, opts: ScalingOptimizations) -> SimDuration {
        if opts.prewarmed_tes {
            TE_PRE_LOAD_WARM
        } else if opts.late_import_parallel_init {
            TE_PRE_LOAD_COLD.mul_f64(TE_PRE_LOAD_OPT_FACTOR)
        } else {
            TE_PRE_LOAD_COLD
        }
    }

    /// Step 3: TE-Load over a given path. `source` matters only for
    /// NPU-fork.
    pub fn te_load(
        &self,
        ckpt: &Checkpoint,
        par: Parallelism,
        path: LoadPath,
        source: SourceLoad,
    ) -> SimDuration {
        let per_npu = ckpt.partition_bytes(par);
        let world = par.world_size() as usize;
        match path {
            LoadPath::DramHit => {
                // All ranks stream their partitions concurrently; PCIe
                // switch + root sharing sets the per-NPU bandwidth.
                let concurrent = world.min(self.cluster.server.chips_per_server);
                let bw = self.cluster.server.pcie_bw_per_npu(concurrent);
                SimDuration::from_secs_f64(per_npu as f64 / bw) + TENSOR_INIT
            }
            LoadPath::DramMiss => {
                // The SSD is the shared bottleneck: every rank's partition
                // faults through it.
                let on_this_server = world.min(self.cluster.server.chips_per_server) as u64;
                let total = per_npu * on_this_server;
                SimDuration::from_secs_f64(total as f64 / self.cluster.server.ssd_bw) + TENSOR_INIT
            }
            LoadPath::NpuForkHccs { fanout } => {
                self.fork_time(self.cluster.hccs, per_npu, fanout, source)
            }
            LoadPath::NpuForkRoce { fanout } => {
                self.fork_time(self.cluster.roce, per_npu, fanout, source)
            }
            LoadPath::Multicast { fanout } => self.multicast_time(per_npu, fanout, source),
        }
    }

    /// λScale binary-tree distribution over the scale-out fabric: in each
    /// round every weight-holding TE sends its partition to one new TE,
    /// so `fanout` targets are covered in `ceil(log2(fanout + 1))` rounds
    /// of point-to-point transfers. Only the first round contends with
    /// the original source's serving load — later rounds fan out from
    /// freshly forked TEs that are not serving yet.
    fn multicast_time(&self, per_npu: u64, fanout: usize, source: SourceLoad) -> SimDuration {
        if fanout == 0 {
            return TENSOR_INIT;
        }
        let rounds = (usize::BITS - fanout.leading_zeros()) as u64; // ceil(log2(fanout+1))
        let hop = hccl::p2p_time(&self.cluster.roce, per_npu);
        let contention = if self.cluster.server.chip.has_transfer_aicpu {
            1.0 + FORK_CONTENTION_MAX * source.intensity.clamp(0.0, 1.0)
        } else {
            1.0 + 0.5 * source.intensity.clamp(0.0, 1.0)
        };
        MULTICAST_SETUP + hop.mul_f64(contention) + hop.saturating_mul(rounds - 1) + TENSOR_INIT
    }

    fn fork_time(
        &self,
        link: LinkSpec,
        per_npu: u64,
        fanout: usize,
        source: SourceLoad,
    ) -> SimDuration {
        // Each source rank broadcasts its partition to the matching rank
        // of every target TE: participants = source + fanout targets.
        let t = hccl::broadcast_time(&link, fanout + 1, per_npu);
        let contention = if self.cluster.server.chip.has_transfer_aicpu {
            1.0 + FORK_CONTENTION_MAX * source.intensity.clamp(0.0, 1.0)
        } else {
            1.0 + 0.5 * source.intensity.clamp(0.0, 1.0)
        };
        NPU_FORK_SETUP + t.mul_f64(contention) + TENSOR_INIT
    }

    /// The "DRAM-theoretical" line of Figure 9: partition bytes over
    /// unshared PCIe, no framework overhead.
    pub fn te_load_theoretical(&self, ckpt: &Checkpoint, par: Parallelism) -> SimDuration {
        let per_npu = ckpt.partition_bytes(par);
        SimDuration::from_secs_f64(per_npu as f64 / self.cluster.server.pcie_bw_unshared())
    }

    /// Step 4: TE-Post-Load, plus the first-request penalty it implies.
    pub fn te_post_load(&self, opts: ScalingOptimizations) -> (SimDuration, SimDuration) {
        let profile = if opts.offline_profiling {
            OFFLINE_PROFILE_READ
        } else {
            WARMUP_PROFILE
        };
        let alloc = if opts.async_block_alloc {
            BLOCK_ALLOC_ASYNC
        } else {
            BLOCK_ALLOC_SYNC
        };
        let dummy = if opts.dummy_warmup {
            DUMMY_REQUEST
        } else {
            SimDuration::ZERO
        };
        // Skipping warmup without the dummy request moves cost onto the
        // first real request (§6: "To address the slowdown of the first
        // request after removing warmup, we added a dummy message").
        let penalty = if opts.offline_profiling && !opts.dummy_warmup {
            FIRST_REQUEST_COLD_PENALTY
        } else {
            SimDuration::ZERO
        };
        (profile + alloc + dummy, penalty)
    }

    /// Step 5: Scaler-Post.
    pub fn scaler_post(&self, opts: ScalingOptimizations) -> SimDuration {
        if opts.proactive_push {
            PROACTIVE_PUSH
        } else {
            TE_LIST_POLL_EXPECTED
        }
    }

    /// Full five-step breakdown for one scale-up.
    pub fn breakdown(
        &self,
        ckpt: &Checkpoint,
        par: Parallelism,
        opts: ScalingOptimizations,
        path: LoadPath,
        source: SourceLoad,
    ) -> ScalingBreakdown {
        let (post, penalty) = self.te_post_load(opts);
        ScalingBreakdown {
            scaler_pre: self.scaler_pre(opts),
            te_pre_load: self.te_pre_load(opts),
            te_load: self.te_load(ckpt, par, path, source),
            te_post_load: post,
            scaler_post: self.scaler_post(opts),
            first_request_penalty: penalty,
        }
    }

    /// Picks the best available load path given the runtime context,
    /// mirroring the master's decision: NPU-fork when enabled and a source
    /// TE runs this model (never during cold start from zero TEs), else
    /// local load whose speed depends on page-cache residency.
    #[allow(clippy::too_many_arguments)] // mirrors the master's full decision context
    pub fn choose_path(
        &self,
        opts: ScalingOptimizations,
        running_sources: usize,
        page_cache: &PageCache,
        ckpt: &Checkpoint,
        par: Parallelism,
        same_hccs_domain: bool,
        fanout: usize,
    ) -> LoadPath {
        if opts.npu_fork && running_sources > 0 {
            return if same_hccs_domain {
                LoadPath::NpuForkHccs { fanout }
            } else {
                LoadPath::NpuForkRoce { fanout }
            };
        }
        // Check residency of rank 0's partition as a proxy for the whole
        // checkpoint (pre-loading faults whole files).
        let r = ckpt.partition(par, 0);
        let resident = page_cache.resident_bytes(ckpt.file, r);
        if resident >= r.len() / 2 {
            LoadPath::DramHit
        } else {
            LoadPath::DramMiss
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::ModelSpec;
    use npu::pagecache::FileId;

    fn model() -> (ScalingModel, Checkpoint) {
        (
            ScalingModel::new(ClusterSpec::gen2_cluster(4)),
            Checkpoint::new(FileId(1), ModelSpec::internal_34b()),
        )
    }

    #[test]
    fn optimizations_shrink_every_step() {
        let (m, ckpt) = model();
        let par = Parallelism::tp(4);
        let before = m.breakdown(
            &ckpt,
            par,
            ScalingOptimizations::none(),
            LoadPath::DramMiss,
            SourceLoad::idle(),
        );
        let after = m.breakdown(
            &ckpt,
            par,
            ScalingOptimizations::all(),
            LoadPath::NpuForkHccs { fanout: 1 },
            SourceLoad::idle(),
        );
        assert!(after.scaler_pre < before.scaler_pre);
        assert!(after.te_pre_load < before.te_pre_load);
        assert!(after.te_load < before.te_load);
        assert!(after.te_post_load < before.te_post_load);
        assert!(after.scaler_post < before.scaler_post);
        // Unoptimized total is over a minute; optimized is seconds.
        assert!(
            before.total() > SimDuration::from_secs(60),
            "{:?}",
            before.total()
        );
        assert!(
            after.total() < SimDuration::from_secs(5),
            "{:?}",
            after.total()
        );
    }

    #[test]
    fn te_pre_load_dominates_after_non_prewarm_opts() {
        // Figure 8: "Even after optimization, the TE-Pre-load step remains
        // the dominant factor ... though this can be further reduced
        // through pre-warming."
        let (m, ckpt) = model();
        let opts = ScalingOptimizations {
            prewarmed_tes: false,
            ..ScalingOptimizations::all()
        };
        let b = m.breakdown(
            &ckpt,
            Parallelism::tp(4),
            opts,
            LoadPath::DramHit,
            SourceLoad::idle(),
        );
        assert!(b.te_pre_load > b.scaler_pre);
        assert!(b.te_pre_load > b.te_load);
        assert!(b.te_pre_load > b.te_post_load + b.scaler_post);
    }

    #[test]
    fn dram_hit_beats_miss_and_theoretical_beats_both() {
        let (m, ckpt) = model();
        let par = Parallelism::tp(4);
        let hit = m.te_load(&ckpt, par, LoadPath::DramHit, SourceLoad::idle());
        let miss = m.te_load(&ckpt, par, LoadPath::DramMiss, SourceLoad::idle());
        let theory = m.te_load_theoretical(&ckpt, par);
        assert!(hit < miss, "hit {hit} vs miss {miss}");
        assert!(theory < hit, "theory {theory} vs hit {hit}");
    }

    #[test]
    fn pcie_sharing_slows_larger_tp() {
        // Figure 9: per-NPU bytes are ~constant across models at their
        // production TP, but loading time grows with TP rank.
        let m = ScalingModel::new(ClusterSpec::gen2_cluster(4));
        let ckpt8 = Checkpoint::new(FileId(1), ModelSpec::llama3_8b());
        let ckpt70 = Checkpoint::new(FileId(2), ModelSpec::llama3_70b());
        let t_8b_tp1 = m.te_load(
            &ckpt8,
            Parallelism::tp(1),
            LoadPath::DramHit,
            SourceLoad::idle(),
        );
        let t_70b_tp8 = m.te_load(
            &ckpt70,
            Parallelism::tp(8),
            LoadPath::DramHit,
            SourceLoad::idle(),
        );
        // 70B@TP8 per-NPU bytes (16.4 GB) ~= 8B@TP1 (16.1 GB), but the
        // TP8 load shares PCIe and must be slower.
        assert!(t_70b_tp8.as_secs_f64() > 1.5 * t_8b_tp1.as_secs_f64());
    }

    #[test]
    fn hccs_fork_beats_roce_and_local() {
        let (m, ckpt) = model();
        let par = Parallelism::tp(4);
        let hccs = m.te_load(
            &ckpt,
            par,
            LoadPath::NpuForkHccs { fanout: 1 },
            SourceLoad::idle(),
        );
        let roce = m.te_load(
            &ckpt,
            par,
            LoadPath::NpuForkRoce { fanout: 1 },
            SourceLoad::idle(),
        );
        let hit = m.te_load(&ckpt, par, LoadPath::DramHit, SourceLoad::idle());
        assert!(hccs < roce);
        assert!(hccs < hit);
    }

    #[test]
    fn fork_scales_nearly_flat_to_64() {
        // Figure 10a: broadcast makes scaling to 64 TEs barely slower than 1.
        let m = ScalingModel::new(ClusterSpec::gen2_cluster(16));
        let ckpt = Checkpoint::new(FileId(1), ModelSpec::llama3_8b());
        let par = Parallelism::tp(1);
        let t1 = m.te_load(
            &ckpt,
            par,
            LoadPath::NpuForkHccs { fanout: 1 },
            SourceLoad::idle(),
        );
        let t64 = m.te_load(
            &ckpt,
            par,
            LoadPath::NpuForkHccs { fanout: 64 },
            SourceLoad::idle(),
        );
        assert!(t64 > t1);
        assert!(
            t64.as_secs_f64() < 1.6 * t1.as_secs_f64(),
            "t1={t1} t64={t64}"
        );
    }

    #[test]
    fn busy_source_adds_bounded_contention() {
        // Figure 10 b/c: dedicated AICPU keeps contention limited.
        let (m, ckpt) = model();
        let par = Parallelism::tp(4);
        let idle = m.te_load(
            &ckpt,
            par,
            LoadPath::NpuForkHccs { fanout: 8 },
            SourceLoad::idle(),
        );
        let busy = m.te_load(
            &ckpt,
            par,
            LoadPath::NpuForkHccs { fanout: 8 },
            SourceLoad { intensity: 1.0 },
        );
        assert!(busy > idle);
        assert!(busy.as_secs_f64() < 1.15 * idle.as_secs_f64());
    }

    #[test]
    fn skipping_warmup_without_dummy_penalizes_first_request() {
        let (m, _) = model();
        let mut opts = ScalingOptimizations::all();
        opts.dummy_warmup = false;
        let (_, penalty) = m.te_post_load(opts);
        assert!(penalty > SimDuration::ZERO);
        let (_, none) = m.te_post_load(ScalingOptimizations::all());
        assert_eq!(none, SimDuration::ZERO);
    }

    #[test]
    fn emit_trace_records_five_contiguous_steps() {
        use simcore::trace::TraceLevel;
        let (m, ckpt) = model();
        let b = m.breakdown(
            &ckpt,
            Parallelism::tp(4),
            ScalingOptimizations::all(),
            LoadPath::NpuForkHccs { fanout: 1 },
            SourceLoad::idle(),
        );
        let mut tracer = Tracer::enabled(TraceLevel::Lifecycle, 64);
        let start = SimTime::from_secs(10);
        let parent = b.emit_trace(&mut tracer, start);
        assert!(parent.is_some());
        let trace = tracer.take();
        let root = trace.spans_labeled("scale_up").next().expect("parent span");
        assert_eq!(root.start, start);
        assert_eq!(root.end, Some(start + b.total()));
        let children: Vec<_> = trace.spans.iter().filter(|s| s.parent == parent).collect();
        assert_eq!(children.len(), 5);
        let expected = [
            "scaler_pre",
            "te_pre_load",
            "te_load",
            "te_post_load",
            "scaler_post",
        ];
        let mut cursor = start;
        for (child, label) in children.iter().zip(expected) {
            assert_eq!(child.label, label);
            assert_eq!(child.start, cursor, "steps are contiguous");
            cursor = child.end.expect("closed child span");
        }
        assert_eq!(cursor, start + b.total(), "children sum to the total");

        // Disabled tracer: nothing recorded, NONE returned.
        let mut off = Tracer::disabled();
        assert_eq!(b.emit_trace(&mut off, start), SpanId::NONE);
        assert!(off.take().is_empty());
    }

    #[test]
    fn path_choice_follows_runtime_context() {
        let (m, ckpt) = model();
        let par = Parallelism::tp(4);
        let mut pc = PageCache::new(100 * (1 << 30));
        let opts = ScalingOptimizations::all();
        // A running source => fork.
        assert!(matches!(
            m.choose_path(opts, 1, &pc, &ckpt, par, true, 4),
            LoadPath::NpuForkHccs { fanout: 4 }
        ));
        assert!(matches!(
            m.choose_path(opts, 1, &pc, &ckpt, par, false, 4),
            LoadPath::NpuForkRoce { .. }
        ));
        // Cold start (no sources): falls back to local; cold cache => miss.
        assert!(matches!(
            m.choose_path(opts, 0, &pc, &ckpt, par, true, 1),
            LoadPath::DramMiss
        ));
        // Pre-load, then it's a hit.
        let r = ckpt.partition(par, 0);
        pc.preload(ckpt.file, r);
        assert!(matches!(
            m.choose_path(opts, 0, &pc, &ckpt, par, true, 1),
            LoadPath::DramHit
        ));
    }

    #[test]
    fn multicast_rounds_grow_logarithmically() {
        let (m, ckpt) = model();
        let par = Parallelism::tp(4);
        let t = |fanout| {
            m.te_load(
                &ckpt,
                par,
                LoadPath::Multicast { fanout },
                SourceLoad::idle(),
            )
        };
        // Doubling the fanout adds exactly one more p2p round.
        let (t1, t2, t4, t8) = (t(1), t(2), t(4), t(8));
        let round = t2 - t1;
        assert!(round > SimDuration::ZERO);
        assert_eq!(t4 - t2, round.saturating_mul(1));
        assert_eq!(t8 - t4, round);
        // 1023 targets = 10 rounds; far cheaper than 1023 sequential sends.
        let t1023 = t(1023);
        assert_eq!(t1023 - t1, round.saturating_mul(9));
    }

    #[test]
    fn multicast_beats_sequential_p2p_and_tracks_broadcast_at_scale() {
        let (m, ckpt) = model();
        let par = Parallelism::tp(4);
        let per_npu = ckpt.partition_bytes(par);
        let fanout = 64;
        let tree = m.te_load(
            &ckpt,
            par,
            LoadPath::Multicast { fanout },
            SourceLoad::idle(),
        );
        // One source sending to 64 targets one after another.
        let sequential =
            hccl::p2p_time(&m.cluster().roce, per_npu).saturating_mul(fanout as u64) + TENSOR_INIT;
        assert!(
            tree < sequential.div(4),
            "binary tree ({tree:?}) must crush sequential p2p ({sequential:?})"
        );
    }

    #[test]
    fn busy_multicast_source_only_slows_the_first_round() {
        let (m, ckpt) = model();
        let par = Parallelism::tp(4);
        let idle = m.te_load(
            &ckpt,
            par,
            LoadPath::Multicast { fanout: 8 },
            SourceLoad::idle(),
        );
        let busy = m.te_load(
            &ckpt,
            par,
            LoadPath::Multicast { fanout: 8 },
            SourceLoad { intensity: 1.0 },
        );
        assert!(busy > idle);
        // The slowdown is bounded by one round's contention ceiling.
        let hop = hccl::p2p_time(&m.cluster().roce, ckpt.partition_bytes(par));
        assert!(busy - idle <= hop.mul_f64(FORK_CONTENTION_MAX + 1e-9));
    }
}
