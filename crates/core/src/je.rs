//! Job Executor: frontend dispatch and the distributed scheduling policy
//! (Algorithm 1).
//!
//! ```text
//! Function dist_sched(req, tes):
//!     tes <- PD_aware(req, tes)
//!     if tes.is_load_balanced():
//!         tes <- locality_aware(req, tes)
//!     else:
//!         tes <- load_aware(req, tes)
//!     return tes
//! ```
//!
//! `PD_aware` consults the combined heatmap with the request's prefill
//! length and *predicted* decode length (`select_tes_PD_heatmap`);
//! `locality_aware` walks the global prompt tree
//! (`select_tes_prefix_match`); `load_aware` picks the least-loaded TE.

use crate::api::ApiRequest;
use crate::heatmap::Heatmap;
use crate::predictor::DecodePredictor;
use crate::prompt_tree::{GlobalPromptTree, TeId};
use simcore::trace::{Trace, TraceLevel, Tracer};
use simcore::{Counters, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Scheduling policy selector (the Figure 6 comparison set plus ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Cycle through targets regardless of anything.
    RoundRobin,
    /// Least-loaded target only.
    LoadAware,
    /// Longest prefix match only (load ignored).
    LocalityAware,
    /// Heatmap-based type selection, then least load.
    PdAware,
    /// The full Algorithm 1: PD-aware + locality-aware + load-aware.
    Combined,
}

/// Where a request should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// One PD-colocated TE.
    Colocated(TeId),
    /// A prefill/decode TE pair.
    Disaggregated {
        /// Prefill-side TE.
        prefill: TeId,
        /// Decode-side TE.
        decode: TeId,
    },
}

impl Target {
    /// The TE whose cache locality matters (colocated TE or prefill TE).
    pub fn locality_te(&self) -> TeId {
        match *self {
            Target::Colocated(t) => t,
            Target::Disaggregated { prefill, .. } => prefill,
        }
    }
}

/// Point-in-time load view of one TE, provided by the platform each
/// scheduling decision (the TE-shell's health/load reporting).
#[derive(Debug, Clone, Copy)]
pub struct TeSnapshot {
    /// Requests queued + running on the TE.
    pub load: usize,
}

/// The schedulable pool: colocated TEs and disaggregated pairs, plus their
/// load snapshots.
#[derive(Debug, Default)]
pub struct SchedPool {
    /// PD-colocated TEs.
    pub colocated: Vec<TeId>,
    /// (prefill TE, decode TE) pairs.
    pub pairs: Vec<(TeId, TeId)>,
    /// Load per TE.
    pub loads: HashMap<TeId, TeSnapshot>,
}

/// Borrowed scheduling view the policies run against: the (possibly
/// filtered) TE lists plus the caller's live load snapshots. `Copy`, so it
/// threads through the policy helpers without cloning anything.
#[derive(Clone, Copy)]
struct PoolView<'a> {
    colocated: &'a [TeId],
    pairs: &'a [(TeId, TeId)],
    loads: &'a HashMap<TeId, TeSnapshot>,
}

impl PoolView<'_> {
    fn load(&self, te: TeId) -> usize {
        self.loads.get(&te).map_or(0, |s| s.load)
    }

    /// Load of a pair = load of its more loaded half (either half
    /// saturating stalls the pipeline).
    fn pair_load(&self, pair: (TeId, TeId)) -> usize {
        self.load(pair.0).max(self.load(pair.1))
    }
}

/// Cached removed-TE filtering of a caller's pool snapshot. The keys are
/// the caller's unfiltered lists: while callers keep presenting the same
/// pool shape (the common case — pools only change on repair/scale
/// events), every `schedule` call reuses the filtered lists instead of
/// rebuilding them per request. Invalidated by
/// [`JobExecutor::note_te_removed`] / [`JobExecutor::note_te_added`].
struct FilteredPool {
    key_colocated: Vec<TeId>,
    key_pairs: Vec<(TeId, TeId)>,
    colocated: Vec<TeId>,
    pairs: Vec<(TeId, TeId)>,
}

/// The scheduling outcome, with the intermediate signals for
/// observability/benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct Decision {
    /// Where to run.
    pub target: Target,
    /// Predicted decode length used by PD-aware.
    pub predicted_decode: u32,
    /// Heatmap cell value consulted (0 when PD-aware was skipped).
    pub heat: f64,
    /// Prompt-tree match length at the chosen locality TE, in tokens.
    pub matched_tokens: usize,
}

/// The model-serving Job Executor.
pub struct JobExecutor {
    policy: Policy,
    heatmap: Heatmap,
    predictor: Box<dyn DecodePredictor>,
    /// Global prompt tree for colocated TEs.
    tree_colocated: GlobalPromptTree,
    /// Global prompt tree for prefill TEs.
    tree_prefill: GlobalPromptTree,
    /// Load-imbalance threshold for `is_load_balanced` (absolute request
    /// spread).
    pub balance_threshold: usize,
    /// Overload spill-over: when the heatmap-preferred TE type's
    /// least-loaded target carries more than `overload_factor` x the other
    /// type's least-loaded target (plus the balance threshold), the
    /// preference is overridden. This is the "dynamics of online serving"
    /// part of the PD-aware policy (§5.3.2): a correct static preference
    /// must not pile the whole workload onto a saturated subgroup.
    pub overload_factor: f64,
    rr_cursor: usize,
    /// TEs removed from service (failed or scaled down). Scheduling
    /// filters these out of the caller's pool, so a stale pool snapshot
    /// can never route to a removed TE.
    removed: BTreeSet<TeId>,
    /// Lazily maintained removed-TE filtering of the last pool snapshot.
    filtered_cache: Option<FilteredPool>,
    counters: Counters,
    tracer: Tracer,
}

impl JobExecutor {
    /// Creates a JE with the given policy, heatmap and predictor.
    pub fn new(
        policy: Policy,
        heatmap: Heatmap,
        predictor: Box<dyn DecodePredictor>,
        block_size: usize,
    ) -> Self {
        JobExecutor {
            policy,
            heatmap,
            predictor,
            tree_colocated: GlobalPromptTree::new(block_size, 200_000),
            tree_prefill: GlobalPromptTree::new(block_size, 200_000),
            balance_threshold: 4,
            overload_factor: 2.0,
            rr_cursor: 0,
            removed: BTreeSet::new(),
            filtered_cache: None,
            counters: Counters::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Turns on sim-time tracing of scheduling decisions.
    pub fn enable_tracing(&mut self, level: TraceLevel, capacity: usize) {
        self.tracer = Tracer::enabled(level, capacity);
    }

    /// Drains everything traced so far.
    pub fn take_trace(&mut self) -> Trace {
        self.tracer.take()
    }

    /// Active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Replaces the heatmap (e.g. after a profiling pass).
    pub fn set_heatmap(&mut self, heatmap: Heatmap) {
        self.heatmap = heatmap;
    }

    /// Scheduling statistics.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// TE -> JE tree sync: a TE reports it now caches `tokens`' prefix.
    pub fn note_cached(
        &mut self,
        now: SimTime,
        te: TeId,
        is_prefill_te: bool,
        tokens: &[flowserve::TokenId],
    ) {
        if is_prefill_te {
            self.tree_prefill.insert(now, te, tokens);
        } else {
            self.tree_colocated.insert(now, te, tokens);
        }
    }

    /// Forgets a TE (scale-down / failure): purges its prompt-tree state
    /// and bars it from scheduling until [`JobExecutor::note_te_added`].
    pub fn note_te_removed(&mut self, te: TeId) {
        self.tree_colocated.remove_te(te);
        self.tree_prefill.remove_te(te);
        self.removed.insert(te);
        self.filtered_cache = None;
        self.counters.incr("je.te_removed");
    }

    /// Re-admits a TE after repair / scale-up. Its prompt trees start
    /// empty (a replaced TE holds no cache).
    pub fn note_te_added(&mut self, te: TeId) {
        self.removed.remove(&te);
        self.filtered_cache = None;
        self.counters.incr("je.te_added");
    }

    /// Whether `te` is currently barred from scheduling.
    pub fn is_removed(&self, te: TeId) -> bool {
        self.removed.contains(&te)
    }

    /// Locality-aware cold-start placement (the fleet analogue of the
    /// locality policy): among `candidates` — `(te, storage tier rank of
    /// the checkpoint on that TE's server, current engine load)` — prefer
    /// the TE whose local storage already holds the model (lowest tier
    /// rank: DRAM beats SSD beats remote), breaking ties by load, then
    /// TeId. Removed TEs never win. Returns `None` when every candidate
    /// is removed.
    pub fn place_cold_start(&mut self, candidates: &[(TeId, u8, usize)]) -> Option<TeId> {
        let &(te, rank, _) = candidates
            .iter()
            .filter(|(te, _, _)| !self.removed.contains(te))
            .min_by_key(|&&(te, rank, load)| (rank, load, te))?;
        self.counters.incr("je.cold_start_placed");
        if rank <= 2 {
            // DRAM (1) or SSD (2) already holds bytes locally; rank 0
            // (HBM) only appears for scale-out from a live replica.
            self.counters.incr("je.cold_start_local_hit");
        }
        Some(te)
    }

    /// Algorithm 1 entry point.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty.
    pub fn schedule(&mut self, now: SimTime, req: &ApiRequest, pool: &SchedPool) -> Decision {
        // Filter removed TEs out of the caller's (possibly stale) pool
        // snapshot so scheduling can never return a dead target. The
        // filtered lists are cached and revalidated against the caller's
        // lists, so the steady state does one Vec comparison per call —
        // never a rebuild, and never a `loads` clone (loads are always
        // borrowed live from the caller).
        let cache = if self.removed.is_empty() {
            None
        } else {
            let mut cache = self.filtered_cache.take();
            let valid = cache
                .as_ref()
                .is_some_and(|c| c.key_colocated == pool.colocated && c.key_pairs == pool.pairs);
            if !valid {
                self.counters.incr("je.filtered_pool_rebuilds");
                cache = Some(FilteredPool {
                    key_colocated: pool.colocated.clone(),
                    key_pairs: pool.pairs.clone(),
                    colocated: pool
                        .colocated
                        .iter()
                        .copied()
                        .filter(|t| !self.removed.contains(t))
                        .collect(),
                    pairs: pool
                        .pairs
                        .iter()
                        .copied()
                        .filter(|(p, d)| !self.removed.contains(p) && !self.removed.contains(d))
                        .collect(),
                });
            }
            cache
        };
        let view = match &cache {
            Some(c) => PoolView {
                colocated: &c.colocated,
                pairs: &c.pairs,
                loads: &pool.loads,
            },
            None => PoolView {
                colocated: &pool.colocated,
                pairs: &pool.pairs,
                loads: &pool.loads,
            },
        };
        assert!(
            !view.colocated.is_empty() || !view.pairs.is_empty(),
            "dist_sched: empty TE pool"
        );
        let predicted = self.predictor.predict(req);
        let decision = match self.policy {
            Policy::RoundRobin => self.round_robin(req, view, predicted),
            Policy::LoadAware => self.load_only(req, view, predicted),
            Policy::LocalityAware => self.locality_only(req, view, predicted),
            Policy::PdAware => self.pd_then_load(req, view, predicted),
            Policy::Combined => self.combined(req, view, predicted),
        };
        self.filtered_cache = cache;
        if self.tracer.is_enabled() {
            let policy = match self.policy {
                Policy::RoundRobin => "round_robin",
                Policy::LoadAware => "load_aware",
                Policy::LocalityAware => "locality_aware",
                Policy::PdAware => "pd_aware",
                Policy::Combined => "combined",
            };
            let (kind, te) = match decision.target {
                Target::Colocated(te) => ("colocated", te),
                Target::Disaggregated { prefill, .. } => ("disaggregated", prefill),
            };
            self.tracer.event(
                now,
                "je.schedule",
                vec![
                    ("req", req.id.0.into()),
                    ("policy", policy.into()),
                    ("predicted_decode", decision.predicted_decode.into()),
                    ("heat", decision.heat.into()),
                    ("matched_tokens", decision.matched_tokens.into()),
                    ("target_kind", kind.into()),
                    ("target_te", te.0.into()),
                ],
            );
        }
        decision
    }

    // ---- policies ----

    fn round_robin(&mut self, req: &ApiRequest, pool: PoolView<'_>, predicted: u32) -> Decision {
        let slots = pool.colocated.len() + pool.pairs.len();
        let slot = self.rr_cursor % slots;
        self.rr_cursor += 1;
        let target = if slot < pool.colocated.len() {
            Target::Colocated(pool.colocated[slot])
        } else {
            let (p, d) = pool.pairs[slot - pool.colocated.len()];
            Target::Disaggregated {
                prefill: p,
                decode: d,
            }
        };
        self.counters.incr("je.rr");
        Decision {
            target,
            predicted_decode: predicted,
            heat: 0.0,
            matched_tokens: self.match_at(req, target),
        }
    }

    fn load_only(&mut self, req: &ApiRequest, pool: PoolView<'_>, predicted: u32) -> Decision {
        let target = self.least_loaded_any(pool);
        self.counters.incr("je.load");
        Decision {
            target,
            predicted_decode: predicted,
            heat: 0.0,
            matched_tokens: self.match_at(req, target),
        }
    }

    fn locality_only(&mut self, req: &ApiRequest, pool: PoolView<'_>, predicted: u32) -> Decision {
        let target = self
            .best_locality(req, pool, /*colocated=*/ true)
            .or_else(|| self.best_locality(req, pool, false))
            .unwrap_or_else(|| self.least_loaded_any(pool));
        self.counters.incr("je.locality");
        Decision {
            target,
            predicted_decode: predicted,
            heat: 0.0,
            matched_tokens: self.match_at(req, target),
        }
    }

    fn pd_then_load(&mut self, req: &ApiRequest, pool: PoolView<'_>, predicted: u32) -> Decision {
        let (subgroup, heat) = self.select_tes_pd_heatmap(req, pool, predicted);
        let target = self.least_loaded_in(pool, &subgroup);
        self.counters.incr("je.pd");
        Decision {
            target,
            predicted_decode: predicted,
            heat,
            matched_tokens: self.match_at(req, target),
        }
    }

    /// Algorithm 1: PD-aware narrows the group; balanced -> locality,
    /// imbalanced -> load.
    fn combined(&mut self, req: &ApiRequest, pool: PoolView<'_>, predicted: u32) -> Decision {
        let (subgroup, heat) = self.select_tes_pd_heatmap(req, pool, predicted);
        let target = if self.is_load_balanced(pool, &subgroup) {
            self.counters.incr("je.combined_locality");
            self.select_tes_prefix_match(req, &subgroup)
                .unwrap_or_else(|| self.least_loaded_in(pool, &subgroup))
        } else {
            self.counters.incr("je.combined_load");
            self.least_loaded_in(pool, &subgroup)
        };
        Decision {
            target,
            predicted_decode: predicted,
            heat,
            matched_tokens: self.match_at(req, target),
        }
    }

    // ---- Algorithm 1 helpers ----

    /// `select_tes_PD_heatmap`: positive cell -> disaggregated pairs,
    /// negative -> colocated; falls back when the preferred type has no
    /// instances. Returns candidate targets plus the cell value.
    fn select_tes_pd_heatmap(
        &mut self,
        req: &ApiRequest,
        pool: PoolView<'_>,
        predicted: u32,
    ) -> (Vec<Target>, f64) {
        let heat = self.heatmap.lookup(req.prefill_len(), predicted);
        let mut prefer_disagg = heat >= 0.0;
        let disagg: Vec<Target> = pool
            .pairs
            .iter()
            .map(|&(p, d)| Target::Disaggregated {
                prefill: p,
                decode: d,
            })
            .collect();
        let coloc: Vec<Target> = pool
            .colocated
            .iter()
            .map(|&t| Target::Colocated(t))
            .collect();
        // Overload spill-over: override a static preference whose best
        // target is drowning while the other type has headroom.
        if !disagg.is_empty() && !coloc.is_empty() {
            let min_disagg = pool
                .pairs
                .iter()
                .map(|&p| pool.pair_load(p))
                .min()
                .unwrap_or(0) as f64;
            let min_coloc = pool
                .colocated
                .iter()
                .map(|&t| pool.load(t))
                .min()
                .unwrap_or(0) as f64;
            let thresh = self.balance_threshold as f64;
            if prefer_disagg && min_disagg > self.overload_factor * min_coloc + thresh {
                prefer_disagg = false;
                self.counters.incr("je.heatmap_overridden");
            } else if !prefer_disagg && min_coloc > self.overload_factor * min_disagg + thresh {
                prefer_disagg = true;
                self.counters.incr("je.heatmap_overridden");
            }
        }
        let chosen = if prefer_disagg && !disagg.is_empty() {
            self.counters.incr("je.heatmap_disagg");
            disagg
        } else if !prefer_disagg && !coloc.is_empty() {
            self.counters.incr("je.heatmap_coloc");
            coloc
        } else if !coloc.is_empty() {
            coloc
        } else {
            disagg
        };
        (chosen, heat)
    }

    /// `select_tes_prefix_match`: longest global-prompt-tree match within
    /// the subgroup; `None` when nothing matches.
    fn select_tes_prefix_match(&self, req: &ApiRequest, subgroup: &[Target]) -> Option<Target> {
        let coloc_matches = self.tree_colocated.match_tokens(&req.prompt);
        let prefill_matches = self.tree_prefill.match_tokens(&req.prompt);
        subgroup
            .iter()
            .filter_map(|&t| {
                let m = match t {
                    Target::Colocated(te) => coloc_matches.get(&te).copied(),
                    Target::Disaggregated { prefill, .. } => prefill_matches.get(&prefill).copied(),
                };
                m.map(|tokens| (t, tokens))
            })
            .max_by(|a, b| {
                a.1.cmp(&b.1)
                    .then_with(|| b.0.locality_te().cmp(&a.0.locality_te()))
            })
            .map(|(t, _)| t)
    }

    fn is_load_balanced(&self, pool: PoolView<'_>, subgroup: &[Target]) -> bool {
        let loads: Vec<usize> = subgroup
            .iter()
            .map(|&t| match t {
                Target::Colocated(te) => pool.load(te),
                Target::Disaggregated { prefill, decode } => pool.pair_load((prefill, decode)),
            })
            .collect();
        match (loads.iter().max(), loads.iter().min()) {
            (Some(&max), Some(&min)) => max - min <= self.balance_threshold,
            _ => true,
        }
    }

    fn least_loaded_in(&self, pool: PoolView<'_>, subgroup: &[Target]) -> Target {
        *subgroup
            .iter()
            .min_by_key(|&&t| match t {
                Target::Colocated(te) => (pool.load(te), te),
                Target::Disaggregated { prefill, decode } => {
                    (pool.pair_load((prefill, decode)), prefill)
                }
            })
            // detlint: allow(panic) — subgroups are built by partitioning a non-empty pool; an empty subgroup cannot reach this selector
            .expect("subgroup is non-empty by construction")
    }

    fn least_loaded_any(&self, pool: PoolView<'_>) -> Target {
        let mut all: Vec<Target> = pool
            .colocated
            .iter()
            .map(|&t| Target::Colocated(t))
            .collect();
        all.extend(pool.pairs.iter().map(|&(p, d)| Target::Disaggregated {
            prefill: p,
            decode: d,
        }));
        self.least_loaded_in(pool, &all)
    }

    fn best_locality(
        &self,
        req: &ApiRequest,
        pool: PoolView<'_>,
        colocated: bool,
    ) -> Option<Target> {
        if colocated {
            let m = self.tree_colocated.match_tokens(&req.prompt);
            pool.colocated
                .iter()
                .filter_map(|&te| m.get(&te).map(|&tok| (te, tok)))
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .map(|(te, _)| Target::Colocated(te))
        } else {
            let m = self.tree_prefill.match_tokens(&req.prompt);
            pool.pairs
                .iter()
                .filter_map(|&(p, d)| m.get(&p).map(|&tok| ((p, d), tok)))
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| (b.0).0.cmp(&(a.0).0)))
                .map(|((p, d), _)| Target::Disaggregated {
                    prefill: p,
                    decode: d,
                })
        }
    }

    fn match_at(&self, req: &ApiRequest, target: Target) -> usize {
        match target {
            Target::Colocated(te) => self
                .tree_colocated
                .match_tokens(&req.prompt)
                .get(&te)
                .copied()
                .unwrap_or(0),
            Target::Disaggregated { prefill, .. } => self
                .tree_prefill
                .match_tokens(&req.prompt)
                .get(&prefill)
                .copied()
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::Oracle;
    use flowserve::synthetic_tokens;

    fn req(id: u64, seed: u64, prefill: usize, output: u32) -> ApiRequest {
        ApiRequest::chat(
            id,
            synthetic_tokens(seed, prefill, 64_000),
            output,
            SimTime::ZERO,
        )
    }

    fn pool_2c_1pair() -> SchedPool {
        let mut loads = HashMap::new();
        for t in [0, 1, 2, 3] {
            loads.insert(TeId(t), TeSnapshot { load: 0 });
        }
        SchedPool {
            colocated: vec![TeId(0), TeId(1)],
            pairs: vec![(TeId(2), TeId(3))],
            loads,
        }
    }

    fn je(policy: Policy) -> JobExecutor {
        JobExecutor::new(policy, Heatmap::default_production(), Box::new(Oracle), 16)
    }

    #[test]
    fn round_robin_cycles_all_slots() {
        let mut j = je(Policy::RoundRobin);
        let pool = pool_2c_1pair();
        let r = req(1, 1, 1024, 128);
        let t1 = j.schedule(SimTime::ZERO, &r, &pool).target;
        let t2 = j.schedule(SimTime::ZERO, &r, &pool).target;
        let t3 = j.schedule(SimTime::ZERO, &r, &pool).target;
        let t4 = j.schedule(SimTime::ZERO, &r, &pool).target;
        assert_eq!(t1, Target::Colocated(TeId(0)));
        assert_eq!(t2, Target::Colocated(TeId(1)));
        assert_eq!(
            t3,
            Target::Disaggregated {
                prefill: TeId(2),
                decode: TeId(3)
            }
        );
        assert_eq!(t4, t1, "wraps around");
    }

    #[test]
    fn pd_aware_sends_long_prefill_short_decode_to_disagg() {
        let mut j = je(Policy::PdAware);
        let pool = pool_2c_1pair();
        // Long prefill, tiny decode: heatmap strongly positive.
        let d = j.schedule(SimTime::ZERO, &req(1, 1, 8192, 64), &pool);
        assert!(d.heat > 0.0);
        assert!(matches!(d.target, Target::Disaggregated { .. }));
        // Short prefill, long decode: colocated.
        let d2 = j.schedule(SimTime::ZERO, &req(2, 2, 256, 512), &pool);
        assert!(d2.heat < 0.0);
        assert!(matches!(d2.target, Target::Colocated(_)));
    }

    #[test]
    fn pd_aware_falls_back_when_type_missing() {
        let mut j = je(Policy::PdAware);
        let mut pool = pool_2c_1pair();
        pool.pairs.clear(); // no disaggregated TEs at all
        let d = j.schedule(SimTime::ZERO, &req(1, 1, 8192, 64), &pool);
        assert!(matches!(d.target, Target::Colocated(_)));
    }

    #[test]
    fn locality_routes_repeat_prompts_to_same_te() {
        let mut j = je(Policy::Combined);
        let pool = pool_2c_1pair();
        // Pick a shape the heatmap sends to colocated TEs.
        let r = req(1, 5, 512, 400);
        let d1 = j.schedule(SimTime::ZERO, &r, &pool);
        let te = match d1.target {
            Target::Colocated(te) => te,
            other => panic!("expected colocated, got {other:?}"),
        };
        // TE reports it cached the prompt.
        j.note_cached(SimTime::ZERO, te, false, &r.prompt);
        // Same prompt again: must go back to the same TE with a match.
        let d2 = j.schedule(SimTime::ZERO, &req(2, 5, 512, 400), &pool);
        assert_eq!(d2.target, Target::Colocated(te));
        assert!(d2.matched_tokens >= 512 - 16);
    }

    #[test]
    fn imbalance_overrides_locality() {
        let mut j = je(Policy::Combined);
        let mut pool = pool_2c_1pair();
        let r = req(1, 5, 512, 400);
        // TE 0 holds the cache but is massively loaded.
        j.note_cached(SimTime::ZERO, TeId(0), false, &r.prompt);
        pool.loads.insert(TeId(0), TeSnapshot { load: 50 });
        let d = j.schedule(SimTime::ZERO, &req(2, 5, 512, 400), &pool);
        assert_eq!(
            d.target,
            Target::Colocated(TeId(1)),
            "load-aware must beat locality when imbalanced"
        );
    }

    #[test]
    fn balanced_load_prefers_locality() {
        let mut j = je(Policy::Combined);
        let mut pool = pool_2c_1pair();
        let r = req(1, 5, 512, 400);
        j.note_cached(SimTime::ZERO, TeId(1), false, &r.prompt);
        // Loads within threshold.
        pool.loads.insert(TeId(0), TeSnapshot { load: 1 });
        pool.loads.insert(TeId(1), TeSnapshot { load: 3 });
        let d = j.schedule(SimTime::ZERO, &req(2, 5, 512, 400), &pool);
        assert_eq!(d.target, Target::Colocated(TeId(1)));
    }

    #[test]
    fn load_aware_picks_least_loaded() {
        let mut j = je(Policy::LoadAware);
        let mut pool = pool_2c_1pair();
        pool.loads.insert(TeId(0), TeSnapshot { load: 9 });
        pool.loads.insert(TeId(1), TeSnapshot { load: 2 });
        pool.loads.insert(TeId(2), TeSnapshot { load: 9 });
        pool.loads.insert(TeId(3), TeSnapshot { load: 9 });
        let d = j.schedule(SimTime::ZERO, &req(1, 1, 1024, 64), &pool);
        assert_eq!(d.target, Target::Colocated(TeId(1)));
    }

    #[test]
    fn te_removal_clears_locality() {
        let mut j = je(Policy::LocalityAware);
        let pool = pool_2c_1pair();
        let r = req(1, 5, 512, 64);
        j.note_cached(SimTime::ZERO, TeId(0), false, &r.prompt);
        j.note_te_removed(TeId(0));
        let d = j.schedule(SimTime::ZERO, &req(2, 5, 512, 64), &pool);
        assert_eq!(d.matched_tokens, 0);
    }

    #[test]
    fn overload_spills_to_the_other_type() {
        let mut j = je(Policy::PdAware);
        let mut pool = pool_2c_1pair();
        // The lone pair is drowning; colocated TEs are idle.
        pool.loads.insert(TeId(2), TeSnapshot { load: 40 });
        pool.loads.insert(TeId(3), TeSnapshot { load: 40 });
        // Shape prefers disaggregation, but the guard must override.
        let d = j.schedule(SimTime::ZERO, &req(1, 1, 8192, 64), &pool);
        assert!(d.heat > 0.0);
        assert!(matches!(d.target, Target::Colocated(_)));
        assert_eq!(j.counters().get("je.heatmap_overridden"), 1);
    }

    #[test]
    fn removed_te_never_scheduled_from_stale_pool() {
        for policy in [
            Policy::RoundRobin,
            Policy::LoadAware,
            Policy::LocalityAware,
            Policy::PdAware,
            Policy::Combined,
        ] {
            let mut j = je(policy);
            // Stale pool still lists TE 0 and the (2, 3) pair; TE 0 and the
            // pair's decode half are removed. Make removed TEs look idle so
            // load-based policies would otherwise pick them.
            let mut pool = pool_2c_1pair();
            pool.loads.insert(TeId(1), TeSnapshot { load: 50 });
            j.note_cached(SimTime::ZERO, TeId(0), false, &req(9, 5, 512, 64).prompt);
            j.note_te_removed(TeId(0));
            j.note_te_removed(TeId(3));
            for i in 0..20 {
                let d = j.schedule(SimTime::ZERO, &req(i, 5, 512, 64), &pool);
                match d.target {
                    Target::Colocated(te) => {
                        assert_ne!(te, TeId(0), "{policy:?} routed to removed TE")
                    }
                    Target::Disaggregated { prefill, decode } => panic!(
                        "{policy:?} routed to pair ({prefill:?}, {decode:?}) with removed decode"
                    ),
                }
            }
        }
    }

    #[test]
    fn readded_te_is_schedulable_again() {
        let mut j = je(Policy::LoadAware);
        let mut pool = pool_2c_1pair();
        pool.loads.insert(TeId(1), TeSnapshot { load: 50 });
        pool.loads.insert(TeId(2), TeSnapshot { load: 50 });
        pool.loads.insert(TeId(3), TeSnapshot { load: 50 });
        j.note_te_removed(TeId(0));
        assert!(j.is_removed(TeId(0)));
        let d = j.schedule(SimTime::ZERO, &req(1, 1, 512, 64), &pool);
        assert_ne!(d.target, Target::Colocated(TeId(0)));
        j.note_te_added(TeId(0));
        assert!(!j.is_removed(TeId(0)));
        let d2 = j.schedule(SimTime::ZERO, &req(2, 1, 512, 64), &pool);
        assert_eq!(
            d2.target,
            Target::Colocated(TeId(0)),
            "idle again after re-add"
        );
    }

    #[test]
    #[should_panic(expected = "empty TE pool")]
    fn all_tes_removed_panics_like_empty_pool() {
        let mut j = je(Policy::Combined);
        let pool = pool_2c_1pair();
        for t in [0, 1, 2, 3] {
            j.note_te_removed(TeId(t));
        }
        j.schedule(SimTime::ZERO, &req(1, 1, 100, 10), &pool);
    }

    #[test]
    #[should_panic(expected = "empty TE pool")]
    fn empty_pool_panics() {
        let mut j = je(Policy::Combined);
        let pool = SchedPool::default();
        j.schedule(SimTime::ZERO, &req(1, 1, 100, 10), &pool);
    }
}
