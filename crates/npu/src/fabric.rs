//! Flow-level fabric model: who talks to whom, over which tier, and when
//! transfers complete under contention.
//!
//! Every NPU owns an HCCS port and every server owns a RoCE NIC. A transfer
//! claims a processor-shared flow on the source port and one on the
//! destination port, and completes when *both* flows finish — each port
//! drains at its own fair share. (Exact max-min coupling across ports would
//! change completion times by at most the share imbalance; draining ports
//! independently is conservative and keeps the event loop simple and
//! deterministic.)
//!
//! Analytic collective costs (all-reduce inside an engine, NPU-fork
//! broadcast) live in [`crate::hccl`]; this module handles the *dynamic*
//! point-to-point traffic: KV-cache movement between prefill and decode TEs,
//! RTC tier swaps, and weight pulls.

use crate::specs::{ClusterSpec, NpuId};
use simcore::{FlowId, SharedLink, SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};

// detlint note: `flow_owner` stays a HashMap — it is only ever used for
// point lookups (insert/remove by key), never iterated, so hash order
// cannot leak anywhere.

/// Which tier a transfer rides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Same NPU: an HBM-internal copy, effectively free at this scale.
    Local,
    /// Scale-up fabric (same HCCS domain).
    Hccs,
    /// Scale-out fabric (across HCCS domains).
    Roce,
}

/// A port in the fabric (ordering gives deterministic iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum PortKey {
    Hccs(NpuId),
    Roce(usize),
}

/// Handle for an in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(u64);

#[derive(Debug)]
struct TransferState {
    pending_flows: usize,
}

/// The cluster fabric: lazily materialized ports plus in-flight transfers.
pub struct Fabric {
    spec: ClusterSpec,
    ports: BTreeMap<PortKey, SharedLink>,
    /// In-flight transfers, iterated on the completion path — a `BTreeMap`
    /// so completion order is id order by construction.
    transfers: BTreeMap<TransferId, TransferState>,
    flow_owner: HashMap<(PortKey, FlowId), TransferId>,
    next_id: u64,
}

impl Fabric {
    /// Creates an idle fabric for the given cluster.
    pub fn new(spec: ClusterSpec) -> Self {
        Fabric {
            spec,
            ports: BTreeMap::new(),
            transfers: BTreeMap::new(),
            flow_owner: HashMap::new(),
            next_id: 0,
        }
    }

    /// The cluster this fabric belongs to.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Which tier connects `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the cluster.
    pub fn link_kind(&self, src: NpuId, dst: NpuId) -> LinkKind {
        assert!(self.spec.contains(src), "fabric: unknown src {src:?}");
        assert!(self.spec.contains(dst), "fabric: unknown dst {dst:?}");
        if src == dst {
            LinkKind::Local
        } else if self.spec.same_hccs_domain(src, dst) {
            LinkKind::Hccs
        } else {
            LinkKind::Roce
        }
    }

    fn port_link(&mut self, key: PortKey) -> &mut SharedLink {
        let spec = &self.spec;
        self.ports.entry(key).or_insert_with(|| match key {
            PortKey::Hccs(_) => SharedLink::new(
                spec.hccs.bandwidth,
                SimDuration::from_micros(spec.hccs.latency_us),
            ),
            PortKey::Roce(_) => SharedLink::new(
                spec.roce.bandwidth,
                SimDuration::from_micros(spec.roce.latency_us),
            ),
        })
    }

    fn endpoints(&self, src: NpuId, dst: NpuId) -> Vec<PortKey> {
        match self.link_kind(src, dst) {
            LinkKind::Local => vec![],
            LinkKind::Hccs => vec![PortKey::Hccs(src), PortKey::Hccs(dst)],
            LinkKind::Roce => {
                if src.server == dst.server {
                    // Same server but different HCCS domain cannot happen
                    // (domains are whole servers); defensive fallback.
                    vec![PortKey::Hccs(src), PortKey::Hccs(dst)]
                } else {
                    vec![PortKey::Roce(src.server), PortKey::Roce(dst.server)]
                }
            }
        }
    }

    /// Starts a transfer of `bytes` from `src` to `dst` at `now`. Local
    /// transfers complete on the next `advance_to` call.
    pub fn start_transfer(
        &mut self,
        now: SimTime,
        src: NpuId,
        dst: NpuId,
        bytes: u64,
    ) -> TransferId {
        let id = TransferId(self.next_id);
        self.next_id += 1;
        let ports = self.endpoints(src, dst);
        if ports.is_empty() {
            // Local copy: model as a zero-pending transfer that completes
            // immediately at the next advance.
            self.transfers
                .insert(id, TransferState { pending_flows: 0 });
            return id;
        }
        let n = ports.len();
        for key in ports {
            let flow = self.port_link(key).start_flow(now, bytes);
            self.flow_owner.insert((key, flow), id);
        }
        self.transfers
            .insert(id, TransferState { pending_flows: n });
        id
    }

    /// Earliest time anything completes, or `None` if the fabric is idle.
    /// Transfers with no pending flows (local copies) complete "now".
    pub fn next_event(&self, now: SimTime) -> Option<SimTime> {
        if self.transfers.values().any(|t| t.pending_flows == 0) {
            return Some(now);
        }
        self.ports
            .values()
            .filter_map(|l| l.next_completion(now))
            .min()
    }

    /// Advances all ports to `now`; returns transfers that completed, in id
    /// order.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<TransferId> {
        let mut done_transfers = Vec::new();
        // Immediate local copies (BTreeMap iteration is already id order).
        let locals: Vec<TransferId> = self
            .transfers
            .iter()
            .filter(|(_, t)| t.pending_flows == 0)
            .map(|(&id, _)| id)
            .collect();
        for id in locals {
            self.transfers.remove(&id);
            done_transfers.push(id);
        }
        // Drain ports in deterministic key order.
        let keys: Vec<PortKey> = self.ports.keys().copied().collect();
        for key in keys {
            let Some(link) = self.ports.get_mut(&key) else {
                continue; // keys collected from this map two lines above
            };
            for flow in link.advance_to(now) {
                let Some(id) = self.flow_owner.remove(&(key, flow)) else {
                    debug_assert!(false, "completed flow must belong to a transfer");
                    continue;
                };
                let Some(state) = self.transfers.get_mut(&id) else {
                    debug_assert!(false, "flow owner must be in-flight");
                    continue;
                };
                state.pending_flows -= 1;
                if state.pending_flows == 0 {
                    self.transfers.remove(&id);
                    done_transfers.push(id);
                }
            }
        }
        done_transfers.sort_unstable();
        done_transfers
    }

    /// Number of in-flight transfers.
    pub fn active_transfers(&self) -> usize {
        self.transfers.len()
    }

    /// Analytic lone-transfer time between two endpoints (no contention).
    /// Used by planners that need an estimate before committing.
    pub fn lone_transfer_estimate(&self, src: NpuId, dst: NpuId, bytes: u64) -> SimDuration {
        match self.link_kind(src, dst) {
            LinkKind::Local => SimDuration::ZERO,
            LinkKind::Hccs => {
                SimDuration::from_micros(self.spec.hccs.latency_us)
                    + SimDuration::from_secs_f64(bytes as f64 / self.spec.hccs.bandwidth)
            }
            LinkKind::Roce => {
                SimDuration::from_micros(self.spec.roce.latency_us)
                    + SimDuration::from_secs_f64(bytes as f64 / self.spec.roce.bandwidth)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::ClusterSpec;

    const GB: u64 = 1 << 30;

    fn fabric() -> Fabric {
        Fabric::new(ClusterSpec::gen2_cluster(4))
    }

    fn drain(f: &mut Fabric, mut now: SimTime) -> Vec<(SimTime, TransferId)> {
        let mut out = Vec::new();
        while let Some(t) = f.next_event(now) {
            now = t;
            for id in f.advance_to(t) {
                out.push((t, id));
            }
        }
        out
    }

    #[test]
    fn classifies_tiers() {
        let f = fabric();
        let a = NpuId::new(0, 0);
        assert_eq!(f.link_kind(a, a), LinkKind::Local);
        assert_eq!(f.link_kind(a, NpuId::new(0, 3)), LinkKind::Hccs);
        assert_eq!(f.link_kind(a, NpuId::new(2, 0)), LinkKind::Roce);
    }

    #[test]
    fn superpod_extends_hccs_across_servers() {
        let f = Fabric::new(ClusterSpec::superpod(4));
        assert_eq!(
            f.link_kind(NpuId::new(0, 0), NpuId::new(3, 5)),
            LinkKind::Hccs
        );
    }

    #[test]
    fn lone_hccs_transfer_matches_estimate() {
        let mut f = fabric();
        let src = NpuId::new(0, 0);
        let dst = NpuId::new(0, 1);
        let est = f.lone_transfer_estimate(src, dst, GB);
        f.start_transfer(SimTime::ZERO, src, dst, GB);
        let done = drain(&mut f, SimTime::ZERO);
        assert_eq!(done.len(), 1);
        let got = done[0].0.as_secs_f64();
        // Both ports drain at full rate so the estimate (one latency +
        // bytes/bw) matches within the double-counted setup latency.
        assert!(
            (got - est.as_secs_f64()).abs() < 1e-3,
            "got {got}, est {est}"
        );
    }

    #[test]
    fn roce_is_slower_than_hccs() {
        let mut f = fabric();
        let t0 = SimTime::ZERO;
        f.start_transfer(t0, NpuId::new(0, 0), NpuId::new(0, 1), GB);
        let hccs_done = drain(&mut f, t0).pop().unwrap().0;
        let mut f2 = fabric();
        f2.start_transfer(t0, NpuId::new(0, 0), NpuId::new(1, 0), GB);
        let roce_done = drain(&mut f2, t0).pop().unwrap().0;
        assert!(roce_done > hccs_done);
    }

    #[test]
    fn shared_destination_port_halves_throughput() {
        let mut f = fabric();
        let t0 = SimTime::ZERO;
        let dst = NpuId::new(2, 0);
        f.start_transfer(t0, NpuId::new(0, 0), dst, GB);
        f.start_transfer(t0, NpuId::new(1, 0), dst, GB);
        let done = drain(&mut f, t0);
        assert_eq!(done.len(), 2);
        let last = done.last().unwrap().0.as_secs_f64();
        let lone = f
            .lone_transfer_estimate(NpuId::new(0, 0), dst, GB)
            .as_secs_f64();
        assert!(
            last > 1.8 * lone,
            "two flows into one NIC should take ~2x: {last} vs lone {lone}"
        );
    }

    #[test]
    fn local_transfer_completes_immediately() {
        let mut f = fabric();
        let a = NpuId::new(0, 0);
        let id = f.start_transfer(SimTime::from_secs(1), a, a, 100 * GB);
        assert_eq!(
            f.next_event(SimTime::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
        assert_eq!(f.advance_to(SimTime::from_secs(1)), vec![id]);
        assert_eq!(f.active_transfers(), 0);
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let mut f = fabric();
        let t0 = SimTime::ZERO;
        f.start_transfer(t0, NpuId::new(0, 0), NpuId::new(0, 1), GB);
        f.start_transfer(t0, NpuId::new(0, 2), NpuId::new(0, 3), GB);
        let done = drain(&mut f, t0);
        let lone = f
            .lone_transfer_estimate(NpuId::new(0, 0), NpuId::new(0, 1), GB)
            .as_secs_f64();
        for (t, _) in done {
            assert!((t.as_secs_f64() - lone).abs() < 1e-3);
        }
    }
}
