//! Four-tier checkpoint storage hierarchy: HBM ← DRAM ← local SSD ← remote.
//!
//! ServerlessLLM's observation (PAPERS.md) is that serverless cold starts
//! are dominated by where the checkpoint *is*, not by the model itself:
//! a weight file already staged in host DRAM loads over PCIe in seconds,
//! one on the local SSD pays the NVMe read, and one that only exists in
//! the remote model store pays a WAN-ish pull before any local tier can
//! serve it. This module models that chain per server, deterministically:
//!
//! * **DRAM** reuses [`crate::pagecache::PageCache`] (byte-range residency,
//!   whole-file LRU) — the same structure the DRAM-hit/miss scaling paths
//!   already price.
//! * **SSD** is a whole-file resident set with capacity and deterministic
//!   LRU eviction (insertion/touch order only; no clocks, no hashes).
//! * **Remote** holds everything, always — the tier of last resort.
//! * **HBM** residency is tracked by the fleet layer above (weights pinned
//!   on a TE); this module prices everything up to "bytes in DRAM".
//!
//! [`ServerStore::fault_in`] is the single mutating entry point: it
//! reports how many bytes each tier must move to make a range
//! DRAM-resident, updates residency (remote → SSD → DRAM), and
//! [`fault_time`] turns that breakdown into sim time.

use crate::pagecache::{ByteRange, FileId, PageCache};
use crate::specs::ServerSpec;
use serde::{Number, Serialize, Value};
use simcore::SimDuration;
use std::collections::HashMap;

/// A storage tier in the checkpoint hierarchy, fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// On-device weights (already loaded on a TE).
    Hbm,
    /// Host DRAM page cache.
    Dram,
    /// Local NVMe SSD.
    Ssd,
    /// The remote model store (object storage / registry).
    Remote,
}

impl Tier {
    /// Stable lowercase label (metric keys, JSON, trace attrs).
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Hbm => "hbm",
            Tier::Dram => "dram",
            Tier::Ssd => "ssd",
            Tier::Remote => "remote",
        }
    }

    /// Locality rank for placement: lower is closer (HBM = 0).
    pub fn rank(self) -> u8 {
        match self {
            Tier::Hbm => 0,
            Tier::Dram => 1,
            Tier::Ssd => 2,
            Tier::Remote => 3,
        }
    }
}

impl Serialize for Tier {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

/// The remote model store's link, shared by every server.
#[derive(Debug, Clone, Copy)]
pub struct RemoteStoreSpec {
    /// Sustained pull bandwidth per server, bytes/s.
    pub bandwidth: f64,
    /// Fixed per-pull latency (control plane + first byte).
    pub latency: SimDuration,
}

impl Default for RemoteStoreSpec {
    fn default() -> Self {
        // A 100 Gb/s storage frontend shared across tenants: ~5 GB/s
        // effective per server, tens of ms to first byte.
        RemoteStoreSpec {
            bandwidth: 5.0e9,
            latency: SimDuration::from_millis(20),
        }
    }
}

/// Whole-file SSD resident set with deterministic LRU eviction.
///
/// detlint note: the byte-count map is point-lookup only (never
/// iterated); LRU order lives in the `lru` vector.
#[derive(Debug, Clone)]
struct SsdStore {
    capacity: u64,
    used: u64,
    bytes: HashMap<FileId, u64>,
    /// Least-recently-used first.
    lru: Vec<FileId>,
}

impl SsdStore {
    fn new(capacity: u64) -> Self {
        SsdStore {
            capacity,
            used: 0,
            bytes: HashMap::new(),
            lru: Vec::new(),
        }
    }

    fn contains(&self, file: FileId) -> bool {
        self.bytes.contains_key(&file)
    }

    fn touch(&mut self, file: FileId) {
        if let Some(pos) = self.lru.iter().position(|&f| f == file) {
            let f = self.lru.remove(pos);
            self.lru.push(f);
        }
    }

    /// Admits `file` (whole-file granularity), evicting LRU files as
    /// needed. Returns the evicted files, oldest first. A file larger
    /// than the whole SSD is not admitted.
    fn admit(&mut self, file: FileId, size: u64) -> Vec<FileId> {
        if self.contains(file) {
            self.touch(file);
            return Vec::new();
        }
        if size > self.capacity {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let Some(victim) = self.lru.first().copied() else {
                break;
            };
            self.lru.remove(0);
            if let Some(b) = self.bytes.remove(&victim) {
                self.used -= b;
            }
            evicted.push(victim);
        }
        self.bytes.insert(file, size);
        self.used += size;
        self.lru.push(file);
        evicted
    }
}

/// How a [`ServerStore::fault_in`] satisfied a range: bytes moved per
/// hierarchy link, plus the deepest tier that had to participate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBreakdown {
    /// Deepest tier touched (DRAM if everything was already resident).
    pub source: Tier,
    /// Bytes already DRAM-resident (no movement).
    pub dram_hit_bytes: u64,
    /// Bytes read SSD → DRAM.
    pub ssd_bytes: u64,
    /// Bytes pulled remote → SSD (then SSD → DRAM).
    pub remote_bytes: u64,
}

impl FaultBreakdown {
    /// Total bytes the caller asked to fault in.
    pub fn total_bytes(&self) -> u64 {
        self.dram_hit_bytes + self.ssd_bytes + self.remote_bytes
    }
}

impl Serialize for FaultBreakdown {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("source".to_string(), self.source.to_value()),
            (
                "dram_hit_bytes".to_string(),
                Value::Number(Number::U64(self.dram_hit_bytes)),
            ),
            (
                "ssd_bytes".to_string(),
                Value::Number(Number::U64(self.ssd_bytes)),
            ),
            (
                "remote_bytes".to_string(),
                Value::Number(Number::U64(self.remote_bytes)),
            ),
        ])
    }
}

/// Per-server storage hierarchy below HBM: DRAM page cache over an SSD
/// resident set over the (infinite) remote store.
#[derive(Debug, Clone)]
pub struct ServerStore {
    dram: PageCache,
    ssd: SsdStore,
}

impl ServerStore {
    /// A store sized from the server spec: the whole DRAM is page cache,
    /// the whole SSD is checkpoint cache.
    pub fn for_server(server: &ServerSpec) -> Self {
        ServerStore {
            dram: PageCache::new(server.dram_bytes),
            ssd: SsdStore::new(server.ssd_bytes),
        }
    }

    /// A store with explicit tier capacities (tests, eviction studies).
    pub fn with_capacities(dram_bytes: u64, ssd_bytes: u64) -> Self {
        ServerStore {
            dram: PageCache::new(dram_bytes),
            ssd: SsdStore::new(ssd_bytes),
        }
    }

    /// The closest tier that can serve `range` of `file` right now,
    /// without mutating residency. DRAM counts when at least half the
    /// range is cached (partial residency still pays most of the SSD
    /// read, so it does not rank as a DRAM hit).
    pub fn locate(&self, file: FileId, range: ByteRange) -> Tier {
        let resident = self.dram.resident_bytes(file, range);
        if !range.is_empty() && resident * 2 >= range.len() {
            return Tier::Dram;
        }
        if self.ssd.contains(file) {
            return Tier::Ssd;
        }
        Tier::Remote
    }

    /// Makes `range` of `file` DRAM-resident, pulling through the
    /// hierarchy, and reports the bytes each link moved. `file_size` is
    /// the whole file's size (SSD admission is whole-file). Mutates LRU
    /// state on every tier, so call order matters — callers must invoke
    /// this from deterministic event order only.
    pub fn fault_in(&mut self, file: FileId, range: ByteRange, file_size: u64) -> FaultBreakdown {
        let from_remote = if self.ssd.contains(file) {
            self.ssd.touch(file);
            0
        } else {
            // Whole-file pull into SSD; evicted victims also leave DRAM so
            // the tiers never disagree about what is local.
            for victim in self.ssd.admit(file, file_size) {
                self.dram.drop_file(victim);
            }
            file_size
        };
        let read = self.dram.read(file, range);
        let ssd_to_dram = read.miss_bytes;
        // The remote pull covers the whole file; the DRAM read only the
        // requested range. Bytes that came over the WAN and were then read
        // up count once per link, which is exactly what the time model
        // charges.
        let source = if from_remote > 0 {
            Tier::Remote
        } else if ssd_to_dram > 0 {
            Tier::Ssd
        } else {
            Tier::Dram
        };
        FaultBreakdown {
            source,
            dram_hit_bytes: read.hit_bytes,
            ssd_bytes: ssd_to_dram.saturating_sub(from_remote.min(ssd_to_dram)),
            remote_bytes: from_remote,
        }
    }

    /// DRAM bytes of `range` currently resident (no mutation).
    pub fn dram_resident(&self, file: FileId, range: ByteRange) -> u64 {
        self.dram.resident_bytes(file, range)
    }

    /// Whether the SSD holds `file`.
    pub fn ssd_holds(&self, file: FileId) -> bool {
        self.ssd.contains(file)
    }

    /// Pre-stages `range` of `file` into DRAM without charging time
    /// (warm-pool priming in tests and benches).
    pub fn prime_dram(&mut self, file: FileId, range: ByteRange, file_size: u64) {
        self.ssd.admit(file, file_size);
        self.dram.preload(file, range);
    }

    /// Pre-stages `file` onto the SSD only.
    pub fn prime_ssd(&mut self, file: FileId, file_size: u64) {
        for victim in self.ssd.admit(file, file_size) {
            self.dram.drop_file(victim);
        }
    }
}

/// Time to execute a [`FaultBreakdown`] on `server`'s hardware: the
/// remote pull (latency + bytes over the shared frontend), then the SSD
/// read of every non-DRAM-resident byte. The links are used in sequence
/// — the remote object must land on SSD before NVMe can stream it up —
/// which matches ServerlessLLM's chained-loading model and keeps the
/// cost monotone in tier depth.
pub fn fault_time(b: FaultBreakdown, server: &ServerSpec, remote: &RemoteStoreSpec) -> SimDuration {
    let mut t = SimDuration::ZERO;
    if b.remote_bytes > 0 {
        t += remote.latency + SimDuration::from_secs_f64(b.remote_bytes as f64 / remote.bandwidth);
    }
    let ssd_read = b.remote_bytes + b.ssd_bytes;
    if ssd_read > 0 {
        t += SimDuration::from_secs_f64(ssd_read as f64 / server.ssd_bw);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::ClusterSpec;

    const GB: u64 = 1_000_000_000;

    fn server() -> ServerSpec {
        ClusterSpec::gen2_cluster(1).server
    }

    #[test]
    fn cold_file_faults_from_remote_then_is_ssd_then_dram_resident() {
        let mut s = ServerStore::with_capacities(64 * GB, 256 * GB);
        let f = FileId(7);
        let r = ByteRange::new(0, 8 * GB);
        assert_eq!(s.locate(f, r), Tier::Remote);

        let b1 = s.fault_in(f, r, 8 * GB);
        assert_eq!(b1.source, Tier::Remote);
        assert_eq!(b1.remote_bytes, 8 * GB);
        assert_eq!(b1.dram_hit_bytes, 0);

        // Second fault: everything is DRAM-resident.
        let b2 = s.fault_in(f, r, 8 * GB);
        assert_eq!(b2.source, Tier::Dram);
        assert_eq!(b2.dram_hit_bytes, 8 * GB);
        assert_eq!(b2.total_bytes(), 8 * GB);
        assert_eq!(s.locate(f, r), Tier::Dram);
    }

    #[test]
    fn dram_eviction_falls_back_to_ssd_tier() {
        // DRAM fits one file, SSD fits both.
        let mut s = ServerStore::with_capacities(10 * GB, 100 * GB);
        let (a, b) = (FileId(1), FileId(2));
        let r = ByteRange::new(0, 8 * GB);
        s.fault_in(a, r, 8 * GB);
        s.fault_in(b, r, 8 * GB); // evicts `a` from DRAM, not from SSD
        assert_eq!(s.locate(a, r), Tier::Ssd);
        let back = s.fault_in(a, r, 8 * GB);
        assert_eq!(back.source, Tier::Ssd);
        assert_eq!(back.remote_bytes, 0);
        assert_eq!(back.ssd_bytes, 8 * GB);
    }

    #[test]
    fn ssd_eviction_is_lru_and_drops_dram_too() {
        // SSD fits two 8 GB files; the third evicts the least recent.
        let mut s = ServerStore::with_capacities(64 * GB, 16 * GB);
        let r = ByteRange::new(0, 8 * GB);
        s.fault_in(FileId(1), r, 8 * GB);
        s.fault_in(FileId(2), r, 8 * GB);
        s.fault_in(FileId(1), r, 8 * GB); // touch 1 → 2 is now LRU
        s.fault_in(FileId(3), r, 8 * GB); // evicts 2
        assert!(s.ssd_holds(FileId(1)));
        assert!(!s.ssd_holds(FileId(2)));
        assert!(s.ssd_holds(FileId(3)));
        assert_eq!(s.locate(FileId(2), r), Tier::Remote);
        assert_eq!(s.dram_resident(FileId(2), r), 0, "coherent with SSD");
    }

    #[test]
    fn fault_time_is_monotone_in_tier_depth() {
        let sv = server();
        let remote = RemoteStoreSpec::default();
        let size = 8 * GB;
        let hit = FaultBreakdown {
            source: Tier::Dram,
            dram_hit_bytes: size,
            ssd_bytes: 0,
            remote_bytes: 0,
        };
        let ssd = FaultBreakdown {
            source: Tier::Ssd,
            dram_hit_bytes: 0,
            ssd_bytes: size,
            remote_bytes: 0,
        };
        let rem = FaultBreakdown {
            source: Tier::Remote,
            dram_hit_bytes: 0,
            ssd_bytes: 0,
            remote_bytes: size,
        };
        let t_hit = fault_time(hit, &sv, &remote);
        let t_ssd = fault_time(ssd, &sv, &remote);
        let t_rem = fault_time(rem, &sv, &remote);
        assert_eq!(t_hit, SimDuration::ZERO);
        assert!(t_ssd > t_hit);
        assert!(t_rem > t_ssd, "remote pays WAN + the same SSD read");
    }

    #[test]
    fn locate_ranks_follow_tier_order() {
        assert!(Tier::Hbm.rank() < Tier::Dram.rank());
        assert!(Tier::Dram.rank() < Tier::Ssd.rank());
        assert!(Tier::Ssd.rank() < Tier::Remote.rank());
        assert_eq!(Tier::Remote.as_str(), "remote");
    }

    #[test]
    fn oversized_file_is_never_admitted_to_ssd() {
        let mut s = ServerStore::with_capacities(64 * GB, 4 * GB);
        let r = ByteRange::new(0, 8 * GB);
        let b = s.fault_in(FileId(9), r, 8 * GB);
        // Streams straight through: remote each time, no SSD residency.
        assert_eq!(b.source, Tier::Remote);
        assert!(!s.ssd_holds(FileId(9)));
    }
}
