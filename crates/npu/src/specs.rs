//! Hardware specifications for the simulated Ascend-style NPU cluster.
//!
//! The paper describes DaVinci-architecture NPUs delivering 280–400 TFLOPS
//! FP16 with 32–64 GB of HBM, eight cards per server behind PCIe, 1.5 TB of
//! DRAM per machine, and two fabric tiers (HCCS scale-up, RoCE scale-out).
//! These structs capture exactly the parameters the cost models consume; the
//! preset constructors are the single calibration point for the whole
//! reproduction (see DESIGN.md "Calibration constants").

use serde::{Deserialize, Serialize};

/// NPU cluster generation (Figure 1(g): Gen1 and Gen2 are in production,
/// Gen3/SuperPod is planned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Generation {
    /// Regular scale-out servers, first production generation.
    Gen1,
    /// Second production generation: more compute, more HBM.
    Gen2,
    /// SuperPod: large scale-up domain with global shared memory.
    Gen3SuperPod,
}

/// One NPU chip.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChipSpec {
    /// Marketing/config name, e.g. "ascend-gen2".
    pub name: &'static str,
    /// Cluster generation this chip belongs to.
    pub generation: Generation,
    /// Peak dense FP16 throughput, in TFLOPS.
    pub tflops_fp16: f64,
    /// High-bandwidth memory capacity, bytes.
    pub hbm_bytes: u64,
    /// HBM bandwidth, bytes/second.
    pub hbm_bw: f64,
    /// Whether the chip has a dedicated AICPU that drives fabric transfers
    /// without stealing compute from the DaVinci cores (§6.2: "the NPU has
    /// dedicated AICPU for data transfer, contention is limited").
    pub has_transfer_aicpu: bool,
}

impl ChipSpec {
    /// First-generation chip: 280 TFLOPS FP16, 32 GB HBM @ 1.2 TB/s.
    pub fn gen1() -> Self {
        ChipSpec {
            name: "ascend-gen1",
            generation: Generation::Gen1,
            tflops_fp16: 280.0,
            hbm_bytes: 32 * (1 << 30),
            hbm_bw: 1.2e12,
            has_transfer_aicpu: true,
        }
    }

    /// Second-generation chip: 400 TFLOPS FP16, 64 GB HBM @ 1.8 TB/s.
    pub fn gen2() -> Self {
        ChipSpec {
            name: "ascend-gen2",
            generation: Generation::Gen2,
            tflops_fp16: 400.0,
            hbm_bytes: 64 * (1 << 30),
            hbm_bw: 1.8e12,
            has_transfer_aicpu: true,
        }
    }

    /// Peak FP16 throughput in FLOP/s (not TFLOPS).
    pub fn flops(&self) -> f64 {
        self.tflops_fp16 * 1e12
    }
}

/// One eight-card NPU server.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServerSpec {
    /// Chip model installed in this server.
    pub chip: ChipSpec,
    /// NPU cards per server (the paper's machines have eight).
    pub chips_per_server: usize,
    /// PCIe bandwidth of one switch uplink, bytes/s. NPUs sharing a switch
    /// share this (Figure 9: "local loading time increases with larger TP
    /// ranks due to PCIe link sharing among NPUs").
    pub pcie_switch_bw: f64,
    /// Number of NPUs behind each PCIe switch.
    pub npus_per_pcie_switch: usize,
    /// Aggregate host-DRAM-to-device bandwidth ceiling for the whole server
    /// (root-complex limit), bytes/s.
    pub pcie_root_bw: f64,
    /// Host DRAM capacity, bytes (1.5 TB in the paper; "sufficient for
    /// pre-loading 10 70B models or 100 7B models").
    pub dram_bytes: u64,
    /// Host DRAM bandwidth available to model loading, bytes/s.
    pub dram_bw: f64,
    /// Local SSD sustained read bandwidth, bytes/s.
    pub ssd_bw: f64,
    /// Local SSD capacity, bytes.
    pub ssd_bytes: u64,
}

impl ServerSpec {
    /// Standard production server built around the given chip.
    pub fn standard(chip: ChipSpec) -> Self {
        ServerSpec {
            chip,
            chips_per_server: 8,
            // PCIe 4.0 x16 per switch uplink.
            pcie_switch_bw: 32e9,
            npus_per_pcie_switch: 2,
            pcie_root_bw: 96e9,
            dram_bytes: 1_500 * (1u64 << 30),
            dram_bw: 200e9,
            ssd_bw: 3.5e9,
            ssd_bytes: 8 * (1u64 << 40),
        }
    }

    /// Effective per-NPU PCIe bandwidth when `concurrent` NPUs on this
    /// server load from host memory simultaneously (e.g. all TP ranks of an
    /// engine loading their weight partitions at once).
    ///
    /// Two ceilings apply: the per-switch uplink shared by
    /// `npus_per_pcie_switch` cards, and the server-wide root-complex
    /// bandwidth shared by all concurrent loaders.
    ///
    /// # Panics
    ///
    /// Panics if `concurrent` is zero or exceeds the card count.
    pub fn pcie_bw_per_npu(&self, concurrent: usize) -> f64 {
        assert!(
            concurrent >= 1 && concurrent <= self.chips_per_server,
            "pcie_bw_per_npu: concurrent={concurrent} out of range 1..={}",
            self.chips_per_server
        );
        let sharing_on_switch = concurrent.min(self.npus_per_pcie_switch) as f64;
        let switch_limit = self.pcie_switch_bw / sharing_on_switch;
        let root_limit = self.pcie_root_bw / concurrent as f64;
        switch_limit.min(root_limit)
    }

    /// Unshared per-NPU PCIe bandwidth (theoretical best case used for the
    /// "DRAM-theoretical" line in Figure 9).
    pub fn pcie_bw_unshared(&self) -> f64 {
        self.pcie_switch_bw
    }
}

/// Fabric tier parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Per-direction point-to-point bandwidth, bytes/s.
    pub bandwidth: f64,
    /// One-way setup/propagation latency.
    pub latency_us: u64,
}

/// Whole-cluster specification.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterSpec {
    /// Server model (homogeneous clusters, as in the paper's testbed).
    pub server: ServerSpec,
    /// Number of servers.
    pub num_servers: usize,
    /// Servers per HCCS (scale-up) domain. 1 means HCCS is intra-server
    /// only (regular Gen1/Gen2 cluster); larger values model a SuperPod.
    pub hccs_domain_servers: usize,
    /// HCCS (scale-up) link: high bandwidth, low latency, small domain.
    pub hccs: LinkSpec,
    /// RoCE (scale-out) link: lower bandwidth, reaches the whole cluster.
    pub roce: LinkSpec,
}

impl ClusterSpec {
    /// A regular Gen2 production cluster: HCCS within each server, RoCE
    /// across servers.
    pub fn gen2_cluster(num_servers: usize) -> Self {
        ClusterSpec {
            server: ServerSpec::standard(ChipSpec::gen2()),
            num_servers,
            hccs_domain_servers: 1,
            hccs: LinkSpec {
                bandwidth: 56e9,
                latency_us: 10,
            },
            roce: LinkSpec {
                bandwidth: 25e9, // 200 Gb/s
                latency_us: 50,
            },
        }
    }

    /// A Gen1 cluster (older chips, same fabric tiers).
    pub fn gen1_cluster(num_servers: usize) -> Self {
        ClusterSpec {
            server: ServerSpec::standard(ChipSpec::gen1()),
            ..Self::gen2_cluster(num_servers)
        }
    }

    /// A SuperPod-style cluster: one large HCCS domain spanning
    /// `num_servers` machines.
    pub fn superpod(num_servers: usize) -> Self {
        let mut c = Self::gen2_cluster(num_servers);
        c.hccs_domain_servers = num_servers.max(1);
        c.server.chip.generation = Generation::Gen3SuperPod;
        c
    }

    /// Total NPU count.
    pub fn total_npus(&self) -> usize {
        self.num_servers * self.server.chips_per_server
    }
}

/// Global NPU coordinate: `(server, chip-on-server)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NpuId {
    /// Server index within the cluster.
    pub server: usize,
    /// Chip index within the server.
    pub chip: usize,
}

impl NpuId {
    /// Creates an id; validity against a spec is checked by
    /// [`ClusterSpec::contains`].
    pub fn new(server: usize, chip: usize) -> Self {
        NpuId { server, chip }
    }
}

impl ClusterSpec {
    /// Whether `id` names a real NPU in this cluster.
    pub fn contains(&self, id: NpuId) -> bool {
        id.server < self.num_servers && id.chip < self.server.chips_per_server
    }

    /// Whether two NPUs share an HCCS (scale-up) domain.
    pub fn same_hccs_domain(&self, a: NpuId, b: NpuId) -> bool {
        let domain = self.hccs_domain_servers.max(1);
        a.server / domain == b.server / domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_ranges() {
        let g1 = ChipSpec::gen1();
        let g2 = ChipSpec::gen2();
        assert!(g1.tflops_fp16 >= 280.0 && g2.tflops_fp16 <= 400.0);
        assert_eq!(g1.hbm_bytes, 32 << 30);
        assert_eq!(g2.hbm_bytes, 64 << 30);
        assert!(g2.flops() > g1.flops());
    }

    #[test]
    fn server_holds_eight_cards_and_dram_fits_preload_targets() {
        let s = ServerSpec::standard(ChipSpec::gen2());
        assert_eq!(s.chips_per_server, 8);
        // Paper: 1.5 TB DRAM fits ~10 70B FP16 models (140 GB each).
        let seventy_b_fp16 = 140u64 * (1 << 30);
        assert!(s.dram_bytes / seventy_b_fp16 >= 10);
    }

    #[test]
    fn pcie_sharing_is_monotone_nonincreasing() {
        let s = ServerSpec::standard(ChipSpec::gen2());
        let mut last = f64::INFINITY;
        for n in 1..=8 {
            let bw = s.pcie_bw_per_npu(n);
            assert!(bw <= last, "bw should not increase with sharing");
            last = bw;
        }
        assert_eq!(s.pcie_bw_per_npu(1), 32e9);
        assert_eq!(s.pcie_bw_per_npu(2), 16e9);
        assert_eq!(s.pcie_bw_per_npu(8), 12e9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pcie_sharing_rejects_zero() {
        ServerSpec::standard(ChipSpec::gen2()).pcie_bw_per_npu(0);
    }

    #[test]
    fn hccs_domains_partition_the_cluster() {
        let regular = ClusterSpec::gen2_cluster(4);
        let a = NpuId::new(0, 0);
        let b = NpuId::new(0, 7);
        let c = NpuId::new(1, 0);
        assert!(regular.same_hccs_domain(a, b));
        assert!(!regular.same_hccs_domain(a, c));

        let pod = ClusterSpec::superpod(4);
        assert!(pod.same_hccs_domain(a, c));
    }

    #[test]
    fn contains_checks_bounds() {
        let c = ClusterSpec::gen2_cluster(2);
        assert!(c.contains(NpuId::new(1, 7)));
        assert!(!c.contains(NpuId::new(2, 0)));
        assert!(!c.contains(NpuId::new(0, 8)));
        assert_eq!(c.total_npus(), 16);
    }

    #[test]
    fn fabric_tiers_are_ordered() {
        let c = ClusterSpec::gen2_cluster(1);
        assert!(c.hccs.bandwidth > c.roce.bandwidth);
        assert!(c.hccs.latency_us < c.roce.latency_us);
    }
}
