//! Host DRAM page-cache model for model-weight loading.
//!
//! DeepServe stores weights as safetensors files: tensors live in contiguous
//! blocks that are `mmap`ed and only touch storage on page faults (§6.2).
//! Pre-loading a model therefore means faulting its file into the page
//! cache; a later TE-Load from a "DRAM-hit" streams from DRAM over PCIe,
//! while a "DRAM-miss" faults from SSD.
//!
//! We model residency at *byte-range* granularity per file: each TP rank of
//! an engine maps only its own partition, so a partially resident file
//! yields a mixed hit/miss read — exactly the behaviour that makes
//! safetensors + on-demand partition reads attractive in the paper.

use simcore::SimDuration;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Identifies a weight file (one model checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// A half-open byte range `[start, end)` within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    pub start: u64,
    pub end: u64,
}

impl ByteRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "ByteRange: start {start} > end {end}");
        ByteRange { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Residency map for one file: non-overlapping, coalesced resident ranges,
/// keyed by start offset.
#[derive(Debug, Default, Clone)]
struct Residency {
    ranges: BTreeMap<u64, u64>, // start -> end
}

impl Residency {
    /// Bytes of `want` that are resident.
    fn resident_bytes(&self, want: ByteRange) -> u64 {
        let mut hit = 0;
        for (&s, &e) in self.ranges.range(..want.end) {
            if e <= want.start {
                continue;
            }
            let lo = s.max(want.start);
            let hi = e.min(want.end);
            if hi > lo {
                hit += hi - lo;
            }
        }
        hit
    }

    /// Marks `r` resident, coalescing with neighbours. Returns newly
    /// resident bytes (i.e. bytes that were not already cached).
    fn insert(&mut self, r: ByteRange) -> u64 {
        if r.is_empty() {
            return 0;
        }
        let already = self.resident_bytes(r);
        let mut new_start = r.start;
        let mut new_end = r.end;
        // Collect overlapping or adjacent ranges.
        let mut to_remove = Vec::new();
        for (&s, &e) in self.ranges.range(..=new_end) {
            if e >= new_start {
                new_start = new_start.min(s);
                new_end = new_end.max(e);
                to_remove.push(s);
            }
        }
        for s in to_remove {
            self.ranges.remove(&s);
        }
        self.ranges.insert(new_start, new_end);
        r.len() - already
    }

    fn total_bytes(&self) -> u64 {
        self.ranges.iter().map(|(&s, &e)| e - s).sum()
    }
}

/// What a read cost, split by source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadBreakdown {
    /// Bytes served from the DRAM page cache.
    pub hit_bytes: u64,
    /// Bytes faulted in from SSD.
    pub miss_bytes: u64,
}

impl ReadBreakdown {
    /// Hit ratio in `[0, 1]`; 1.0 for empty reads.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            1.0
        } else {
            self.hit_bytes as f64 / total as f64
        }
    }
}

/// A server's DRAM page cache with LRU eviction at file granularity.
///
/// Eviction granularity is whole files because DeepServe pre-loads and
/// evicts checkpoints as units (the cluster manager predicts "models likely
/// to scale" and pre-loads those models).
#[derive(Debug, Clone)]
pub struct PageCache {
    capacity: u64,
    used: u64,
    files: HashMap<FileId, Residency>,
    /// LRU order: front = least recently used.
    lru: Vec<FileId>,
}

impl PageCache {
    /// Creates a cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        PageCache {
            capacity,
            used: 0,
            files: HashMap::new(),
            lru: Vec::new(),
        }
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes of `range` in `file` currently resident.
    pub fn resident_bytes(&self, file: FileId, range: ByteRange) -> u64 {
        self.files.get(&file).map_or(0, |r| r.resident_bytes(range))
    }

    fn touch(&mut self, file: FileId) {
        if let Some(pos) = self.lru.iter().position(|&f| f == file) {
            self.lru.remove(pos);
        }
        self.lru.push(file);
    }

    /// Evicts least-recently-used files (never `protect`) until `need` bytes
    /// fit. Returns files evicted. If even evicting everything else cannot
    /// make room, admits anyway (the OS would thrash; we saturate).
    fn make_room(&mut self, need: u64, protect: FileId) -> Vec<FileId> {
        let mut evicted = Vec::new();
        let mut i = 0;
        while self.used + need > self.capacity && i < self.lru.len() {
            let victim = self.lru[i];
            if victim == protect {
                i += 1;
                continue;
            }
            self.lru.remove(i);
            if let Some(res) = self.files.remove(&victim) {
                self.used -= res.total_bytes();
            }
            evicted.push(victim);
        }
        evicted
    }

    /// Reads `range` of `file` through the cache: resident bytes hit, the
    /// rest fault from SSD and become resident. Returns the hit/miss split;
    /// the caller converts it to time via [`read_time`].
    pub fn read(&mut self, file: FileId, range: ByteRange) -> ReadBreakdown {
        let hit = self.resident_bytes(file, range);
        let miss = range.len() - hit;
        if miss > 0 {
            self.make_room(miss, file);
            let res = self.files.entry(file).or_default();
            let new_bytes = res.insert(range);
            debug_assert_eq!(new_bytes, miss);
            self.used += new_bytes;
        }
        if !range.is_empty() {
            self.touch(file);
        }
        ReadBreakdown {
            hit_bytes: hit,
            miss_bytes: miss,
        }
    }

    /// Pre-loads `range` of `file` (predictive DRAM pre-loading). Returns
    /// bytes actually faulted in (already-resident bytes are free).
    pub fn preload(&mut self, file: FileId, range: ByteRange) -> u64 {
        self.read(file, range).miss_bytes
    }

    /// Drops a file from the cache entirely (e.g. checkpoint deleted).
    pub fn drop_file(&mut self, file: FileId) {
        if let Some(res) = self.files.remove(&file) {
            self.used -= res.total_bytes();
        }
        self.lru.retain(|&f| f != file);
    }
}

/// Converts a read breakdown to time, given the source bandwidths. Hit bytes
/// stream at `dram_bw`, miss bytes at `ssd_bw` (the slower of faulting and
/// streaming dominates; reads from the two sources do not overlap in the
/// worst case, which is what we model).
pub fn read_time(b: ReadBreakdown, dram_bw: f64, ssd_bw: f64) -> SimDuration {
    assert!(dram_bw > 0.0 && ssd_bw > 0.0, "bandwidths must be positive");
    SimDuration::from_secs_f64(b.hit_bytes as f64 / dram_bw)
        + SimDuration::from_secs_f64(b.miss_bytes as f64 / ssd_bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn cold_read_is_all_miss_then_hot() {
        let mut pc = PageCache::new(10 * GB);
        let f = FileId(1);
        let r = ByteRange::new(0, 2 * GB);
        let first = pc.read(f, r);
        assert_eq!(first.miss_bytes, 2 * GB);
        assert_eq!(first.hit_bytes, 0);
        let second = pc.read(f, r);
        assert_eq!(second.hit_bytes, 2 * GB);
        assert_eq!(second.miss_bytes, 0);
        assert_eq!(second.hit_ratio(), 1.0);
    }

    #[test]
    fn partial_residency_splits_hit_miss() {
        let mut pc = PageCache::new(10 * GB);
        let f = FileId(1);
        pc.preload(f, ByteRange::new(0, GB));
        let b = pc.read(f, ByteRange::new(0, 2 * GB));
        assert_eq!(b.hit_bytes, GB);
        assert_eq!(b.miss_bytes, GB);
        assert!((b.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tp_partitions_do_not_interfere() {
        // Two TP ranks read disjoint halves; each only faults its own half.
        let mut pc = PageCache::new(10 * GB);
        let f = FileId(7);
        let rank0 = pc.read(f, ByteRange::new(0, GB));
        assert_eq!(rank0.miss_bytes, GB);
        let rank1 = pc.read(f, ByteRange::new(GB, 2 * GB));
        assert_eq!(rank1.miss_bytes, GB);
        assert_eq!(pc.used(), 2 * GB);
    }

    #[test]
    fn ranges_coalesce() {
        let mut pc = PageCache::new(10 * GB);
        let f = FileId(1);
        pc.preload(f, ByteRange::new(0, GB));
        pc.preload(f, ByteRange::new(GB, 2 * GB));
        assert_eq!(pc.resident_bytes(f, ByteRange::new(0, 2 * GB)), 2 * GB);
        assert_eq!(pc.used(), 2 * GB);
        // Overlapping preload adds only the new part.
        let faulted = pc.preload(f, ByteRange::new(GB / 2, 3 * GB));
        assert_eq!(faulted, GB);
        assert_eq!(pc.used(), 3 * GB);
    }

    #[test]
    fn lru_evicts_cold_files() {
        let mut pc = PageCache::new(3 * GB);
        let (a, b, c) = (FileId(1), FileId(2), FileId(3));
        pc.preload(a, ByteRange::new(0, GB));
        pc.preload(b, ByteRange::new(0, GB));
        pc.preload(c, ByteRange::new(0, GB));
        // Touch `a` so `b` is the LRU victim.
        pc.read(a, ByteRange::new(0, GB));
        pc.preload(FileId(4), ByteRange::new(0, 2 * GB));
        assert_eq!(pc.resident_bytes(b, ByteRange::new(0, GB)), 0);
        assert!(pc.used() <= pc.capacity());
        // `a` survived (it was warmer than b and c).
        assert!(pc.resident_bytes(a, ByteRange::new(0, GB)) > 0);
    }

    #[test]
    fn read_time_uses_source_bandwidths() {
        let b = ReadBreakdown {
            hit_bytes: 200_000_000_000, // 200 GB at 200 GB/s = 1s
            miss_bytes: 3_500_000_000,  // 3.5 GB at 3.5 GB/s = 1s
        };
        let t = read_time(b, 200e9, 3.5e9);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn drop_file_frees_space() {
        let mut pc = PageCache::new(4 * GB);
        pc.preload(FileId(1), ByteRange::new(0, 2 * GB));
        assert_eq!(pc.used(), 2 * GB);
        pc.drop_file(FileId(1));
        assert_eq!(pc.used(), 0);
    }

    #[test]
    fn empty_read_is_free_hit() {
        let mut pc = PageCache::new(GB);
        let b = pc.read(FileId(1), ByteRange::new(5, 5));
        assert_eq!(b.hit_bytes + b.miss_bytes, 0);
        assert_eq!(b.hit_ratio(), 1.0);
    }
}
