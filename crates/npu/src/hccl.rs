//! Cost models for the Huawei Collective Communication Library (HCCL).
//!
//! The paper uses HCCL two ways: collectives (`all_reduce`, `broadcast`) for
//! tensor parallelism and NPU-fork, and peer-to-peer `send`/`recv` as
//! DistFlow's default backend. We model completion *time*, not data: the
//! formulas are the standard alpha-beta models for ring/pipelined
//! algorithms, with an efficiency factor folded into the bandwidth term.

use crate::specs::LinkSpec;
use simcore::SimDuration;

/// Fraction of nominal link bandwidth that collectives actually achieve
/// (protocol overhead, imperfect overlap).
pub const COLLECTIVE_EFFICIENCY: f64 = 0.85;

/// Chunk count used by the pipelined broadcast. More chunks flatten the
/// dependence on participant count at the cost of more per-chunk latency.
pub const BROADCAST_PIPELINE_CHUNKS: u64 = 64;

/// Returns the latency component of a link as a duration.
fn alpha(link: &LinkSpec) -> SimDuration {
    SimDuration::from_micros(link.latency_us)
}

/// Effective bandwidth (bytes/s) after the collective efficiency factor.
fn beta_bw(link: &LinkSpec) -> f64 {
    link.bandwidth * COLLECTIVE_EFFICIENCY
}

/// Point-to-point `send`/`recv` time for `bytes` over `link`.
pub fn p2p_time(link: &LinkSpec, bytes: u64) -> SimDuration {
    alpha(link) + SimDuration::from_secs_f64(bytes as f64 / beta_bw(link))
}

/// Ring `all_reduce` over `n` ranks, `bytes` per rank.
///
/// Standard ring cost: `2 (n-1)/n * bytes / bw + 2 (n-1) * alpha`.
/// Degenerates to zero for a single rank.
pub fn all_reduce_time(link: &LinkSpec, n: usize, bytes: u64) -> SimDuration {
    if n <= 1 {
        return SimDuration::ZERO;
    }
    let n_f = n as f64;
    let steps = 2 * (n as u64 - 1);
    let volume = 2.0 * (n_f - 1.0) / n_f * bytes as f64;
    alpha(link).saturating_mul(steps) + SimDuration::from_secs_f64(volume / beta_bw(link))
}

/// Ring `reduce_scatter` over `n` ranks, `bytes` per rank.
pub fn reduce_scatter_time(link: &LinkSpec, n: usize, bytes: u64) -> SimDuration {
    if n <= 1 {
        return SimDuration::ZERO;
    }
    let n_f = n as f64;
    let volume = (n_f - 1.0) / n_f * bytes as f64;
    alpha(link).saturating_mul(n as u64 - 1) + SimDuration::from_secs_f64(volume / beta_bw(link))
}

/// Ring `all_gather` over `n` ranks, `bytes` gathered per rank.
pub fn all_gather_time(link: &LinkSpec, n: usize, bytes: u64) -> SimDuration {
    // Same volume/step structure as reduce_scatter.
    reduce_scatter_time(link, n, bytes)
}

/// Pipelined `broadcast` of `bytes` from one root to `n - 1` receivers.
///
/// The payload is cut into [`BROADCAST_PIPELINE_CHUNKS`] chunks relayed down
/// a chain, so total time is `bytes/bw + (n - 2) * chunk/bw + n-ish alphas` —
/// nearly flat in `n` once the pipeline fills. This is the property NPU-fork
/// exploits to scale to 64 instances (Figure 10a).
pub fn broadcast_time(link: &LinkSpec, n: usize, bytes: u64) -> SimDuration {
    if n <= 1 || bytes == 0 {
        return SimDuration::ZERO;
    }
    let chunk = (bytes as f64 / BROADCAST_PIPELINE_CHUNKS as f64).max(1.0);
    let bw = beta_bw(link);
    let fill = (n as f64 - 2.0).max(0.0) * chunk / bw;
    let stream = bytes as f64 / bw;
    alpha(link).saturating_mul(n as u64 - 1) + SimDuration::from_secs_f64(stream + fill)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hccs() -> LinkSpec {
        LinkSpec {
            bandwidth: 56e9,
            latency_us: 10,
        }
    }

    fn roce() -> LinkSpec {
        LinkSpec {
            bandwidth: 25e9,
            latency_us: 50,
        }
    }

    const GB: u64 = 1 << 30;

    #[test]
    fn p2p_is_latency_plus_transfer() {
        let t = p2p_time(&hccs(), 56_000_000_000 / 2);
        // Half the nominal-bandwidth-second of bytes at 85% efficiency
        // => ~0.588s plus 10us latency.
        assert!((t.as_secs_f64() - (0.5 / 0.85 + 10e-6)).abs() < 1e-6, "{t}");
    }

    #[test]
    fn all_reduce_degenerates_for_one_rank() {
        assert_eq!(all_reduce_time(&hccs(), 1, GB), SimDuration::ZERO);
    }

    #[test]
    fn all_reduce_grows_sublinearly_with_ranks() {
        // The 2(n-1)/n volume factor approaches 2: doubling ranks must not
        // double the time.
        let t2 = all_reduce_time(&hccs(), 2, GB);
        let t8 = all_reduce_time(&hccs(), 8, GB);
        assert!(t8 > t2);
        assert!(t8.as_secs_f64() < 2.0 * t2.as_secs_f64());
    }

    #[test]
    fn broadcast_is_nearly_flat_in_fanout() {
        // Figure 10a: forking to 64 TEs costs barely more than to 2.
        let t2 = broadcast_time(&hccs(), 2, 16 * GB);
        let t64 = broadcast_time(&hccs(), 64, 16 * GB);
        assert!(t64 > t2);
        assert!(
            t64.as_secs_f64() < 2.2 * t2.as_secs_f64(),
            "t2={t2} t64={t64}: pipeline should flatten fan-out"
        );
    }

    #[test]
    fn hccs_beats_roce() {
        // Figure 9: loading with HCCS is significantly faster than RoCE.
        let b = 16 * GB;
        assert!(p2p_time(&hccs(), b) < p2p_time(&roce(), b));
        assert!(broadcast_time(&hccs(), 8, b) < broadcast_time(&roce(), 8, b));
    }

    #[test]
    fn zero_bytes_broadcast_is_free() {
        assert_eq!(broadcast_time(&hccs(), 16, 0), SimDuration::ZERO);
    }

    #[test]
    fn gather_and_scatter_match() {
        assert_eq!(
            all_gather_time(&hccs(), 4, GB),
            reduce_scatter_time(&hccs(), 4, GB)
        );
    }
}
