//! # npu — the simulated Ascend-style hardware substrate
//!
//! The paper's evaluation runs on a production Huawei Ascend NPU cluster;
//! this crate is the substitution (DESIGN.md, substitution table): a
//! parametric model of the same hardware with calibrated analytic costs.
//!
//! * [`specs`] — chips (Gen1/Gen2/SuperPod), eight-card servers with shared
//!   PCIe switches and 1.5 TB DRAM, cluster topology with HCCS domains.
//! * [`hccl`] — alpha-beta cost models for the Huawei Collective
//!   Communication Library: `send`/`recv`, ring `all_reduce`, pipelined
//!   `broadcast` (the primitive behind NPU-fork's flat fan-out).
//! * [`fabric`] — flow-level dynamic traffic: point-to-point transfers over
//!   HCCS/RoCE ports with processor-sharing contention.
//! * [`pagecache`] — host DRAM page cache for safetensors weight loading
//!   (DRAM-hit vs DRAM-miss vs preloading, Figure 9).
//! * [`storage`] — the four-tier checkpoint hierarchy (HBM ← DRAM ← local
//!   SSD ← remote store) behind serverless fleet cold starts.

#![forbid(unsafe_code)]

pub mod fabric;
pub mod hccl;
pub mod pagecache;
pub mod specs;
pub mod storage;

pub use fabric::{Fabric, LinkKind, TransferId};
pub use pagecache::{ByteRange, FileId, PageCache, ReadBreakdown};
pub use specs::{ChipSpec, ClusterSpec, Generation, LinkSpec, NpuId, ServerSpec};
pub use storage::{fault_time, FaultBreakdown, RemoteStoreSpec, ServerStore, Tier};
