//! Property-based tests for the hardware-model invariants.

use npu::hccl;
use npu::pagecache::{ByteRange, FileId, PageCache};
use npu::specs::{ChipSpec, ClusterSpec, LinkSpec, NpuId, ServerSpec};
use proptest::prelude::*;

proptest! {
    /// The page cache never exceeds capacity, and reading the same range
    /// twice always hits the second time (no spurious eviction of what was
    /// just touched, as long as it fits at all).
    #[test]
    fn pagecache_capacity_and_rehit(
        reads in prop::collection::vec((0u64..8, 0u64..1_000, 1u64..2_000), 1..60),
    ) {
        let cap = 16_384u64;
        let mut pc = PageCache::new(cap);
        for (file, start, len) in reads {
            let r = ByteRange::new(start, start + len);
            let first = pc.read(FileId(file), r);
            prop_assert!(pc.used() <= cap, "used {} > cap {cap}", pc.used());
            prop_assert_eq!(first.hit_bytes + first.miss_bytes, len);
            if len <= cap {
                let second = pc.read(FileId(file), r);
                prop_assert_eq!(second.miss_bytes, 0, "immediate re-read must hit");
            }
        }
    }

    /// Residency accounting agrees with a naive byte-set model.
    #[test]
    fn pagecache_matches_naive_model(
        ops in prop::collection::vec((0u64..3, 0u64..300, 1u64..300), 1..40),
    ) {
        let mut pc = PageCache::new(1 << 40); // effectively unbounded
        let mut naive: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
            Default::default();
        for (file, start, len) in ops {
            let r = ByteRange::new(start, start + len);
            let got = pc.read(FileId(file), r);
            let set = naive.entry(file).or_default();
            let hits = (start..start + len).filter(|b| set.contains(b)).count() as u64;
            prop_assert_eq!(got.hit_bytes, hits, "hit bytes disagree with naive model");
            for b in start..start + len {
                set.insert(b);
            }
        }
    }

    /// Collective cost models are monotone in payload size and respect the
    /// tier ordering (HCCS strictly faster than RoCE for equal payloads).
    #[test]
    fn hccl_costs_are_monotone(a in 1u64..1 << 34, b in 1u64..1 << 34, n in 2usize..64) {
        let hccs = LinkSpec { bandwidth: 56e9, latency_us: 10 };
        let roce = LinkSpec { bandwidth: 25e9, latency_us: 50 };
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(hccl::p2p_time(&hccs, lo) <= hccl::p2p_time(&hccs, hi));
        prop_assert!(hccl::all_reduce_time(&hccs, n, lo) <= hccl::all_reduce_time(&hccs, n, hi));
        prop_assert!(hccl::broadcast_time(&hccs, n, lo) <= hccl::broadcast_time(&hccs, n, hi));
        prop_assert!(hccl::p2p_time(&hccs, hi) < hccl::p2p_time(&roce, hi));
        prop_assert!(hccl::broadcast_time(&hccs, n, hi) < hccl::broadcast_time(&roce, n, hi));
    }

    /// PCIe sharing never grants more bandwidth to more concurrent loaders.
    #[test]
    fn pcie_sharing_is_monotone(a in 1usize..8, b in 1usize..8) {
        let s = ServerSpec::standard(ChipSpec::gen2());
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(s.pcie_bw_per_npu(hi) <= s.pcie_bw_per_npu(lo));
        // Aggregate bandwidth never exceeds the root-complex ceiling.
        prop_assert!(s.pcie_bw_per_npu(hi) * hi as f64 <= s.pcie_root_bw + 1.0);
    }

    /// HCCS-domain membership is an equivalence relation over any cluster
    /// shape (reflexive, symmetric, transitive).
    #[test]
    fn hccs_domains_are_equivalence_classes(
        servers in 1usize..12,
        domain in 1usize..12,
        picks in prop::collection::vec((0usize..12, 0usize..8), 3),
    ) {
        let mut spec = ClusterSpec::gen2_cluster(servers);
        spec.hccs_domain_servers = domain;
        let ids: Vec<NpuId> = picks
            .iter()
            .map(|&(s, c)| NpuId::new(s % servers, c))
            .collect();
        let (x, y, z) = (ids[0], ids[1], ids[2]);
        prop_assert!(spec.same_hccs_domain(x, x));
        prop_assert_eq!(spec.same_hccs_domain(x, y), spec.same_hccs_domain(y, x));
        if spec.same_hccs_domain(x, y) && spec.same_hccs_domain(y, z) {
            prop_assert!(spec.same_hccs_domain(x, z));
        }
    }
}
