//! Umbrella crate for the DeepServe reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use deepserve_repro::...`. See `README.md` for the
//! architecture overview and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use deepserve;
pub use flowserve;
pub use llm_model;
pub use npu;
pub use simcore;
pub use workloads;
