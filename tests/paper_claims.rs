//! Cross-crate integration tests pinning the paper's headline claims at
//! small scale. These are fast versions of the figure benches: if one of
//! these breaks, the corresponding figure's shape has regressed.

use deepserve_repro::deepserve::{
    materialize_trace, ClusterConfig, ClusterSim, LoadPath, ScalingModel, ScalingOptimizations,
    SourceLoad, TeRole,
};
use deepserve_repro::flowserve::{
    synthetic_tokens, Engine, EngineConfig, EngineEvent, EngineVersion, NewRequest, RequestId,
};
use deepserve_repro::llm_model::{Checkpoint, ExecCostModel, ModelSpec, Parallelism};
use deepserve_repro::npu::pagecache::FileId;
use deepserve_repro::npu::specs::ClusterSpec;
use deepserve_repro::simcore::{SimRng, SimTime};
use deepserve_repro::workloads::ChatTrace;

fn cost_34b() -> ExecCostModel {
    let c = ClusterSpec::gen2_cluster(1);
    ExecCostModel::new(
        c.server.chip.clone(),
        c.hccs,
        ModelSpec::internal_34b(),
        Parallelism::tp(4),
    )
}

/// Figure 3's ordering: offline decode throughput v1 < v2 < v3 at a fixed
/// batch, and v2 at least 1.5x v1 (paper: >2x at the 50ms SLA point).
#[test]
fn engine_versions_order_offline_throughput() {
    let run = |version: EngineVersion| -> f64 {
        let batch = 48;
        let cfg = EngineConfig {
            version,
            prefill_chunk_tokens: 2048 * batch,
            ..EngineConfig::colocated()
        };
        let mut e = Engine::new(cfg, cost_34b());
        for i in 0..batch {
            e.submit(
                SimTime::ZERO,
                NewRequest {
                    id: RequestId(i as u64),
                    prompt: synthetic_tokens(i as u64, 2048, 64_000).into(),
                    target_output: 129,
                    arrival: SimTime::ZERO,
                    cache_id: None,
                },
            );
        }
        let mut now = SimTime::ZERO;
        let mut finish = SimTime::ZERO;
        let mut first = SimTime::ZERO;
        while let Some(w) = e.next_wake(now) {
            now = w;
            for ev in e.advance(now) {
                match ev {
                    EngineEvent::FirstToken { at, .. } => first = first.max_of(at),
                    EngineEvent::Finished { at, .. } => finish = at,
                    _ => {}
                }
            }
        }
        let decode_span = finish.since(first).as_secs_f64();
        assert!(
            decode_span > 0.0,
            "decode span must be positive, got {decode_span}"
        );
        (batch * 128) as f64 / decode_span
    };
    let v1 = run(EngineVersion::v1());
    let v2 = run(EngineVersion::v2());
    let v3 = run(EngineVersion::v3());
    // At a *fixed* batch the async win is smaller than at the SLA-matched
    // point (where bigger batches fit under 50 ms); the full >2x claim is
    // checked by the fig3_offline_perf bench, which interpolates the SLA
    // crossing. Here we pin the ordering and a conservative margin.
    assert!(v2 > 1.4 * v1, "v2 ({v2:.0}) must be >=1.4x v1 ({v1:.0})");
    assert!(v3 > v2, "v3 ({v3:.0}) must beat v2 ({v2:.0})");
}

/// Figure 4's headline: at an offered load that saturates colocated
/// serving, disaggregation holds TPOT under the SLA.
#[test]
fn disaggregation_protects_tpot_under_load() {
    let run = |roles: &[TeRole]| {
        let mut rng = SimRng::seed_from_u64(99);
        let trace = ChatTrace::paper(8.0).generate(&mut rng, 120);
        let mut sim = ClusterSim::new(ClusterConfig::standard_34b(), roles);
        sim.inject(materialize_trace(&trace, 64_000));
        let mut r = sim.run_to_completion();
        r.latency.tpot_ms().p90
    };
    let coloc = run(&[TeRole::Colocated; 4]);
    let disagg = run(&[
        TeRole::Prefill,
        TeRole::Prefill,
        TeRole::Decode,
        TeRole::Decode,
    ]);
    assert!(
        disagg < coloc * 0.7,
        "disagg TPOT p90 ({disagg:.1}ms) must clearly beat colocated ({coloc:.1}ms)"
    );
}

/// Figure 9's ordering: theoretical < DRAM-hit < DRAM-miss, and NPU-fork
/// over HCCS beats everything local.
#[test]
fn te_load_paths_order_correctly() {
    let m = ScalingModel::new(ClusterSpec::gen2_cluster(4));
    let ckpt = Checkpoint::new(FileId(1), ModelSpec::internal_34b());
    let par = Parallelism::tp(4);
    let idle = SourceLoad::idle();
    let theory = m.te_load_theoretical(&ckpt, par);
    let hit = m.te_load(&ckpt, par, LoadPath::DramHit, idle);
    let miss = m.te_load(&ckpt, par, LoadPath::DramMiss, idle);
    let fork = m.te_load(&ckpt, par, LoadPath::NpuForkHccs { fanout: 1 }, idle);
    assert!(theory < hit && hit < miss);
    assert!(fork < hit);
}

/// Figure 10's flatness: forking to 64 TEs costs < 1.6x forking to one,
/// and a fully busy source adds < 10%.
#[test]
fn npu_fork_scales_flat_with_bounded_contention() {
    let m = ScalingModel::new(ClusterSpec::gen2_cluster(16));
    let ckpt = Checkpoint::new(FileId(1), ModelSpec::llama3_8b());
    let par = Parallelism::tp(1);
    let one = m.te_load(
        &ckpt,
        par,
        LoadPath::NpuForkHccs { fanout: 1 },
        SourceLoad::idle(),
    );
    let sixty_four = m.te_load(
        &ckpt,
        par,
        LoadPath::NpuForkHccs { fanout: 64 },
        SourceLoad::idle(),
    );
    assert!(sixty_four.as_secs_f64() < 1.6 * one.as_secs_f64());
    // "scale up to 64 instances in parallel within seconds"
    assert!(sixty_four.as_secs_f64() < 5.0);
    let busy = m.te_load(
        &ckpt,
        par,
        LoadPath::NpuForkHccs { fanout: 64 },
        SourceLoad { intensity: 1.0 },
    );
    assert!(busy.as_secs_f64() < 1.10 * sixty_four.as_secs_f64());
}

/// Figure 8's totals: a cold scale-up takes minutes; a fully optimized one
/// takes seconds.
#[test]
fn scaling_pipeline_before_after() {
    let m = ScalingModel::new(ClusterSpec::gen2_cluster(4));
    let ckpt = Checkpoint::new(FileId(1), ModelSpec::internal_34b());
    let par = Parallelism::tp(4);
    let before = m
        .breakdown(
            &ckpt,
            par,
            ScalingOptimizations::none(),
            LoadPath::DramMiss,
            SourceLoad::idle(),
        )
        .total();
    let after = m
        .breakdown(
            &ckpt,
            par,
            ScalingOptimizations::all(),
            LoadPath::NpuForkHccs { fanout: 1 },
            SourceLoad::idle(),
        )
        .total();
    assert!(before.as_secs_f64() > 60.0);
    assert!(after.as_secs_f64() < 5.0);
    assert!(before.as_secs_f64() / after.as_secs_f64() > 20.0);
}

/// The combined policy's scheduling is deterministic across the whole
/// stack (workloads -> platform -> engines -> fabric).
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut rng = SimRng::seed_from_u64(3);
        let trace = ChatTrace::paper(2.0).generate(&mut rng, 60);
        let mut sim = ClusterSim::new(
            ClusterConfig::standard_34b(),
            &[TeRole::Colocated, TeRole::Prefill, TeRole::Decode],
        );
        sim.inject(materialize_trace(&trace, 64_000));
        let mut r = sim.run_to_completion();
        (
            r.latency.completed(),
            r.latency.jct_ms().mean.to_bits(),
            r.counters.get("sim.kv_bytes_migrated"),
        )
    };
    assert_eq!(run(), run());
}
