//! Prefill–decode disaggregation in action (§4.5): the same chat workload
//! served by four PD-colocated TEs vs a 2-prefill/2-decode disaggregated
//! pool, with KV migrated over the NPU fabric by DistFlow.
//!
//! Run with: `cargo run --release --example pd_disagg`

use deepserve_repro::deepserve::{
    materialize_trace, ClusterConfig, ClusterSim, Policy, RunReport, TeRole,
};
use deepserve_repro::simcore::SimRng;
use deepserve_repro::workloads::ChatTrace;

fn run(roles: &[TeRole], rps: f64) -> RunReport {
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };
    let mut sim = ClusterSim::new(cfg, roles);
    let mut rng = SimRng::seed_from_u64(13);
    let trace = ChatTrace::paper(rps).generate(&mut rng, 250);
    sim.inject(materialize_trace(&trace, 64_000));
    sim.run_to_completion()
}

fn main() {
    let rps = 0.8;
    println!("chat trace (~2K in / 200 out) at {rps} rps, 4 engines each\n");

    let mut coloc = run(&[TeRole::Colocated; 4], rps);
    let mut disagg = run(
        &[
            TeRole::Prefill,
            TeRole::Prefill,
            TeRole::Decode,
            TeRole::Decode,
        ],
        rps,
    );

    for (name, report) in [
        ("4x PD-colocated", &mut coloc),
        ("2P + 2D disaggregated", &mut disagg),
    ] {
        let ttft = report.latency.ttft_ms();
        let tpot = report.latency.tpot_ms();
        println!("{name}:");
        println!("  TTFT p50/p99: {:.0} / {:.0} ms", ttft.p50, ttft.p99);
        println!("  TPOT p50/p99: {:.1} / {:.1} ms", tpot.p50, tpot.p99);
        println!(
            "  TPOT <= 50ms attainment: {:.1}%",
            report.latency.tpot_sla_attainment(50.0).unwrap_or(0.0) * 100.0
        );
        println!(
            "  KV migrations: {} ({} MB moved)",
            report.counters.get("sim.kv_migrations"),
            report.counters.get("sim.kv_bytes_migrated") / (1 << 20)
        );
        println!();
    }
    println!(
        "Expected shape (Figure 4): disaggregation keeps decode iterations\n\
         free of prefill interference, lowering TPOT at the same load."
    );
}
