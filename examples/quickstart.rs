//! Quickstart: stand up a small DeepServe cluster, serve a chat workload,
//! print the serving metrics the paper reports (TTFT / TPOT / JCT /
//! throughput).
//!
//! Run with: `cargo run --release --example quickstart`

use deepserve_repro::deepserve::{materialize_trace, ClusterConfig, ClusterSim, Policy, TeRole};
use deepserve_repro::simcore::SimRng;
use deepserve_repro::workloads::ChatTrace;

fn main() {
    // A 4-server Gen2 Ascend cluster serving the internal 34B model at
    // TP=4 — the paper's standard serving testbed.
    let cfg = ClusterConfig {
        policy: Policy::Combined,
        ..ClusterConfig::standard_34b()
    };

    // Two PD-colocated TEs plus one prefill/decode pair.
    let roles = [
        TeRole::Colocated,
        TeRole::Colocated,
        TeRole::Prefill,
        TeRole::Decode,
    ];
    let mut sim = ClusterSim::new(cfg, &roles);
    println!("cluster up: {:?}", sim.roles());

    // The paper's internal chat trace: ~2K input, ~200 output, Poisson
    // arrivals at 0.8 requests/second.
    let mut rng = SimRng::seed_from_u64(42);
    let trace = ChatTrace::paper(0.8).generate(&mut rng, 200);
    let requests = materialize_trace(&trace, 64_000);
    println!("injecting {} chat requests at 0.8 rps", requests.len());

    sim.inject(requests);
    let mut report = sim.run_to_completion();

    println!();
    println!("completed : {}", report.latency.completed());
    println!("makespan  : {}", report.makespan);
    println!("TTFT (ms) : {}", report.latency.ttft_ms());
    println!("TPOT (ms) : {}", report.latency.tpot_ms());
    println!("JCT  (ms) : {}", report.latency.jct_ms());
    println!("decode throughput: {:.1} tok/s", report.throughput());
    println!(
        "TPOT <= 50ms SLO attainment: {:.1}%",
        report.latency.tpot_sla_attainment(50.0).unwrap_or(0.0) * 100.0
    );
    println!();
    println!("routing and transfer counters:");
    for (k, v) in report.counters.iter() {
        println!("  {k} = {v}");
    }
}
