//! Fast scaling under a traffic burst (§6): the AUTOSCALER reacts to a
//! 10x load spike, and we compare how quickly capacity arrives with the
//! full optimization stack (pre-warmed pods/TEs, DRAM pre-loading,
//! NPU-fork) versus a cold pipeline.
//!
//! Run with: `cargo run --release --example autoscale_burst`

use deepserve_repro::deepserve::{
    AutoscaleSignal, Autoscaler, AutoscalerConfig, PodPool, PreloadManager, ScaleAction,
    ScalingModel, ScalingOptimizations, SourceLoad, TePool,
};
use deepserve_repro::llm_model::{Checkpoint, ModelSpec, Parallelism};
use deepserve_repro::npu::pagecache::{FileId, PageCache};
use deepserve_repro::npu::specs::ClusterSpec;
use deepserve_repro::simcore::{SimDuration, SimRng, SimTime};
use deepserve_repro::workloads::{BurstLoad, ChatTrace};

/// Requests each active TE can absorb per autoscaler tick.
const TE_CAPACITY_PER_TICK: usize = 10;

struct Scenario {
    name: &'static str,
    opts: ScalingOptimizations,
}

fn main() {
    let cluster = ClusterSpec::gen2_cluster(16);
    let model = ModelSpec::internal_34b();
    let par = Parallelism::tp(4);
    let ckpt = Checkpoint::new(FileId(1), model.clone());
    let scaling = ScalingModel::new(cluster.clone());

    // A 5-minute window with a 10x burst at t=60s.
    let burst = BurstLoad {
        base_rps: 2.0,
        burst_rps: 20.0,
        burst_at: SimTime::from_secs(60),
        burst_secs: 120.0,
        shape: ChatTrace::paper(2.0),
    };
    let mut rng = SimRng::seed_from_u64(21);
    let arrivals = burst.generate(&mut rng, 300.0);
    println!(
        "burst workload: {} requests over 300s (2 rps -> 20 rps at t=60s)\n",
        arrivals.len()
    );

    for scenario in [
        Scenario {
            name: "cold pipeline (no optimizations)",
            opts: ScalingOptimizations::none(),
        },
        Scenario {
            name: "optimized (pre-warm + DRAM preload + NPU-fork)",
            opts: ScalingOptimizations::all(),
        },
    ] {
        simulate(&scaling, &ckpt, par, &arrivals, scenario);
    }
    println!(
        "Expected shape (Figure 7/8): the optimized pipeline brings new TEs\n\
         up in seconds (NPU-fork from a running TE), the cold pipeline in\n\
         over a minute — the burst is long over before cold capacity lands."
    );
}

fn simulate(
    scaling: &ScalingModel,
    ckpt: &Checkpoint,
    par: Parallelism,
    arrivals: &[deepserve_repro::workloads::ReqSpec],
    scenario: Scenario,
) {
    let mut pods = PodPool::new(8);
    let mut tes = TePool::new(8, 64);
    let mut preload = PreloadManager::new();
    preload.note_demand(ckpt.model.name);
    let mut cache = PageCache::new(scaling.cluster().server.dram_bytes);
    if scenario.opts.dram_preload {
        preload.preload_into(&mut cache, std::slice::from_ref(ckpt));
    }

    let mut scaler = Autoscaler::new(AutoscalerConfig {
        high_load_per_te: 8.0,
        step: 8,
        cooldown: SimDuration::from_secs(5),
        ..AutoscalerConfig::default()
    });

    let mut active: usize = 2;
    // (ready_at, count) for in-flight scale-ups.
    let mut pending: Vec<(SimTime, usize)> = Vec::new();
    let mut backlog: usize = 0;
    let mut idx = 0usize;
    let mut first_scale: Option<(SimTime, SimDuration)> = None;
    let mut peak_backlog = 0usize;

    // 1-second autoscaler ticks over the 300s window.
    for sec in 0..300u64 {
        let now = SimTime::from_secs(sec);
        // Arrivals this tick.
        while idx < arrivals.len() && arrivals[idx].arrival < now + SimDuration::from_secs(1) {
            backlog += 1;
            idx += 1;
        }
        // Scale-ups completing.
        pending.retain(|&(ready, n)| {
            if ready <= now {
                active += n;
                false
            } else {
                true
            }
        });
        // Service.
        backlog = backlog.saturating_sub(active * TE_CAPACITY_PER_TICK);
        peak_backlog = peak_backlog.max(backlog);

        let signal = AutoscaleSignal {
            total_load: backlog,
            active_tes: active,
            scaling_tes: pending.iter().map(|&(_, n)| n).sum(),
            slo_violation_rate: 0.0,
        };
        if let Some(ScaleAction::Up(n)) = scaler.decide(now, signal) {
            // Resolve the pipeline latency for this scale-up.
            let mut opts = scenario.opts;
            opts.prewarmed_pods &= pods.acquire();
            opts.prewarmed_tes &= tes.acquire(par.world_size() as usize);
            let path = scaling.choose_path(opts, active, &cache, ckpt, par, true, n);
            let total = scaling
                .breakdown(ckpt, par, opts, path, SourceLoad { intensity: 0.7 })
                .total();
            pending.push((now + total, n));
            if first_scale.is_none() && sec >= 60 {
                first_scale = Some((now, total));
                println!(
                    "[{}] t={sec}s scale +{n} TEs via {path:?}, pipeline {total}",
                    scenario.name
                );
            }
        }
    }
    println!(
        "[{}] final TEs: {active}, peak backlog: {peak_backlog} requests\n",
        scenario.name
    );
}
