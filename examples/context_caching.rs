//! Explicit context caching via RTC's ID-based index (§4.3, Table 1):
//! DeepServe's context-caching endpoint registers a long document under a
//! `CacheId`; follow-up questions match by ID (`MatchByID`) instead of
//! re-prefilling the document.
//!
//! This example drives a single FlowServe engine directly through its
//! public API — the same way the TE-shell's context-caching handler does.
//!
//! Run with: `cargo run --release --example context_caching`

use deepserve_repro::flowserve::{
    synthetic_tokens, CacheId, Engine, EngineConfig, EngineEvent, NewRequest, RequestId,
};
use deepserve_repro::llm_model::{ExecCostModel, ModelSpec, Parallelism};
use deepserve_repro::npu::specs::ClusterSpec;
use deepserve_repro::simcore::{SimDuration, SimTime};

fn drive(engine: &mut Engine, mut now: SimTime) -> (SimTime, Vec<EngineEvent>) {
    let mut events = Vec::new();
    while let Some(wake) = engine.next_wake(now) {
        now = wake;
        events.extend(engine.advance(now));
    }
    (now, events)
}

fn ttft_of(events: &[EngineEvent]) -> SimDuration {
    events
        .iter()
        .find_map(|e| match e {
            EngineEvent::Finished { latency, .. } => Some(latency.ttft),
            _ => None,
        })
        .expect("request finished")
}

fn main() {
    let cluster = ClusterSpec::gen2_cluster(1);
    let cost = ExecCostModel::new(
        cluster.server.chip.clone(),
        cluster.hccs,
        ModelSpec::internal_34b(),
        Parallelism::tp(4),
    );
    let mut engine = Engine::new(EngineConfig::colocated(), cost);

    // A 12K-token document registered under an explicit cache id.
    let document = synthetic_tokens(0xD0C, 12_288, 64_000);
    let cache = CacheId(1);

    println!("step 1: create the context cache (prefill the document once)");
    let mut prompt = document.clone();
    prompt.extend(synthetic_tokens(1, 64, 64_000)); // first question
    engine.submit(
        SimTime::ZERO,
        NewRequest {
            id: RequestId(1),
            prompt: prompt.into(),
            target_output: 100,
            arrival: SimTime::ZERO,
            cache_id: Some(cache),
        },
    );
    let (now, events) = drive(&mut engine, SimTime::ZERO);
    let cold = ttft_of(&events);
    println!("  cold TTFT (full 12K prefill): {cold}");

    println!("\nstep 2: ask three follow-up questions against the cached context");
    let mut t = now + SimDuration::from_secs(1);
    for q in 2..=4u64 {
        let mut prompt = document.clone();
        prompt.extend(synthetic_tokens(q, 64, 64_000));
        engine.submit(
            t,
            NewRequest {
                id: RequestId(q),
                prompt: prompt.into(),
                target_output: 100,
                arrival: t,
                cache_id: Some(cache),
            },
        );
        let (now2, events) = drive(&mut engine, t);
        let warm = ttft_of(&events);
        println!(
            "  question {q}: TTFT {warm}  ({:.1}x faster than cold)",
            cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
        );
        t = now2 + SimDuration::from_secs(1);
    }

    let hits = engine.counters().get("engine.cache_hit_tokens");
    println!("\ncache-hit tokens served without recompute: {hits}");
    println!(
        "RTC state: {} cached nodes, {} free HBM blocks",
        engine.rtc().cached_nodes(),
        engine.rtc().npu_free_blocks()
    );
}
