//! Multi-turn chat with prefix-cache locality: the scenario the paper's
//! locality-aware scheduling (§5.2) is built for. Conversations grow turn
//! by turn; each turn's prompt is a strict extension of the previous one,
//! so routing a conversation back to the TE that cached it slashes TTFT.
//!
//! Compares the Combined policy (locality-aware when balanced) against
//! pure load-aware routing on the same trace.
//!
//! Run with: `cargo run --release --example chat_serving`

use deepserve_repro::deepserve::{
    materialize_trace, ClusterConfig, ClusterSim, Policy, RunReport, TeRole,
};
use deepserve_repro::simcore::SimRng;
use deepserve_repro::workloads::SharedPrefixChat;

fn run(policy: Policy) -> RunReport {
    let cfg = ClusterConfig {
        policy,
        ..ClusterConfig::standard_34b()
    };
    let roles = [TeRole::Colocated, TeRole::Colocated, TeRole::Colocated];
    let mut sim = ClusterSim::new(cfg, &roles);
    // Fresh RNG per run: identical traces for both policies.
    let mut rng = SimRng::seed_from_u64(7);
    let trace = SharedPrefixChat::standard(1.2).generate(&mut rng, 300);
    sim.inject(materialize_trace(&trace, 64_000));
    sim.run_to_completion()
}

fn main() {
    println!("multi-turn chat: 24 conversations, 300 turns, 1.2 rps, 3 colocated TEs\n");
    for policy in [Policy::Combined, Policy::LoadAware, Policy::RoundRobin] {
        let mut report = run(policy);
        let ttft = report.latency.ttft_ms();
        let jct = report.latency.jct_ms();
        println!("policy {policy:?}:");
        println!("  TTFT mean {:.0} ms  p99 {:.0} ms", ttft.mean, ttft.p99);
        println!("  JCT  mean {:.0} ms  p99 {:.0} ms", jct.mean, jct.p99);
        println!(
            "  throughput {:.1} tok/s, completed {}",
            report.throughput(),
            report.latency.completed()
        );
        println!();
    }
    println!(
        "Expected shape: Combined routes repeat conversations to the TE\n\
         holding their KV, so its TTFT beats load-only and round-robin."
    );
}
