//! Offline stand-in for `serde_json`: formats and parses the [`Value`]
//! model defined by the `serde` stub. Covers the subset this workspace
//! uses: `to_string`, `to_string_pretty`, `to_value`, and `from_str`
//! (returning a dynamically typed [`Value`]).

#![forbid(unsafe_code)]

pub use serde::value::{Number, ParseError, Value};

/// Error type mirroring `serde_json::Error`'s role in signatures.
pub type Error = ParseError;
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON string. Infallible for this stub's data model, but keeps
/// the `Result` signature callers expect from real serde_json.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json())
}

/// Pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_pretty())
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value> {
    Value::parse(input)
}
