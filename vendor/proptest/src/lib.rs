//! Offline stand-in for `proptest`.
//!
//! Provides the subset the workspace's property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and tuple
//! strategies, `any::<T>()`, and `prop::collection::vec`. Cases are drawn
//! from a generator seeded by the test's module path and name, so every run
//! explores the same inputs — failures reproduce without shrink files.
//!
//! No shrinking: a failing case reports its assertion message and panics.
//! Case count defaults to 32 and can be raised via `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion — the test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!` — draw another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = std::result::Result<(), TestCaseError>;

/// Number of accepted cases each `proptest!` test runs.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Deterministic generator (xoshiro256++ seeded by SplitMix64 of the test
/// name) backing all strategies.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)` via 128-bit multiply (deterministic, bias
    /// negligible for the bounds tests use).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below: empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of values for one test argument.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
sint_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($t:ident . $idx:tt),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats only: the tests feed these into arithmetic.
        rng.next_f64() * 2e9 - 1e9
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection size specification: an exact count or a `[lo, hi)` range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.hi > self.size.lo + 1 {
            self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
        } else {
            self.size.lo
        };
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    /// `prop::collection::vec(elem, size)` — vectors of `elem` draws.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec` paths resolve.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let __target = $crate::cases();
            let mut __accepted = 0u32;
            let mut __attempts = 0u32;
            while __accepted < __target {
                __attempts += 1;
                assert!(
                    __attempts < __target.saturating_mul(64).max(1024),
                    "proptest: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", __attempts, msg)
                    }
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
