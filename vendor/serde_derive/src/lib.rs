//! Derive macros for the offline serde stand-in.
//!
//! Parses the item's token stream by hand (no `syn`/`quote` in this
//! offline environment) and emits a `serde::Serialize` impl producing the
//! same JSON shape real serde would: named-field structs become objects,
//! tuple structs arrays, and enums are externally tagged (unit variants as
//! strings, newtype variants as `{"Name": value}`, tuple variants as
//! `{"Name": [..]}`, struct variants as `{"Name": {..}}`).
//!
//! Supported item shapes: non-generic structs and enums. Generic items are
//! rejected with a compile error naming this file, so a future need is easy
//! to diagnose.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("literal"),
    }
}

/// `Deserialize` is derived in a few places but never invoked (no
/// `from_str::<T>` call sites exist); emit nothing so the derive position
/// stays valid without dragging in a deserialization framework.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

fn generate(input: TokenStream) -> Result<String, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };

    // Reject generics: none of the workspace's serialized types are generic,
    // and supporting them here would triple the parser for no user.
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive: generic type `{name}` unsupported (vendor/serde_derive)"
            ));
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Ok(struct_impl(&name, &fields))
        }
        "enum" => {
            let body = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(enum_impl(&name, &parse_variants(body)))
        }
        other => Err(format!(
            "serde stub derive: unsupported item kind `{other}`"
        )),
    }
}

/// Extracts field names from a named-field body, skipping attributes,
/// visibility, and type tokens (commas inside `<...>` are not separators).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = iter.next() else {
            break;
        };
        fields.push(field.to_string());
        // Skip `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut angle = 0i32;
    let mut saw_tokens = false;
    for tok in body {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    // `(A, B)` has one comma and two fields; a trailing comma would
    // over-count, but rustfmt strips those from tuple structs in practice.
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(vname)) = iter.next() else {
            break;
        };
        let vname = vname.to_string();
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                iter.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                iter.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push((vname, fields));
        // Skip optional discriminant and the trailing comma.
        let mut angle = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    variants
}

fn struct_impl(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        {body}\n    }}\n}}"
    )
}

fn enum_impl(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (vname, fields) in variants {
        let arm = match fields {
            Fields::Unit => format!(
                "{name}::{vname} => serde::Value::String({vname:?}.to_string()),"
            ),
            Fields::Tuple(1) => format!(
                "{name}::{vname}(f0) => serde::Value::Object(vec![({vname:?}.to_string(), serde::Serialize::to_value(f0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({}) => serde::Value::Object(vec![({vname:?}.to_string(), serde::Value::Array(vec![{}]))]),",
                    binds.join(", "),
                    items.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let binds = fnames.join(", ");
                let entries: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => serde::Value::Object(vec![({vname:?}.to_string(), serde::Value::Object(vec![{}]))]),",
                    entries.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        match self {{\n            {}\n        }}\n    }}\n}}",
        arms.join("\n            ")
    )
}
