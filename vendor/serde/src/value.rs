//! Owned JSON value tree plus a formatter and a small recursive-descent
//! parser. Object entries preserve insertion order (like `serde_json`'s
//! `preserve_order` feature) so derived struct output matches field order.

use std::fmt;

/// A JSON number. Integers are kept exact (u64/i64) so simulation-time
/// nanosecond stamps survive a round trip without float truncation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }
}

/// An owned JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array.
    pub fn at(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty JSON rendering with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write;
    match n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip float formatting is valid JSON
                // except that it can omit a fractional part; keep it as-is
                // (JSON accepts integer-looking numbers).
                let _ = write!(out, "{v}");
            } else {
                // JSON has no NaN/inf; real serde_json errors, we degrade to
                // null so diagnostic dumps never abort a run.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our dumps;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if is_float {
            Number::F64(text.parse().map_err(|_| self.err("invalid number"))?)
        } else if text.starts_with('-') {
            Number::I64(text.parse().map_err(|_| self.err("invalid number"))?)
        } else {
            Number::U64(text.parse().map_err(|_| self.err("invalid number"))?)
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U64(18446744073709551615))),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("line\n\"quoted\"".into())),
            ("d".into(), Value::Number(Number::F64(1.25))),
            ("e".into(), Value::Number(Number::I64(-7))),
        ]);
        let text = v.to_json_pretty();
        let back = Value::parse(&text).expect("parse back");
        assert_eq!(v, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("1 2").is_err());
    }
}
