//! Offline stand-in for `serde`, scoped to what this workspace needs.
//!
//! The real `serde` is a data-model/visitor framework; this crate collapses
//! that to a single [`Serialize`] trait that renders a value into an owned
//! JSON [`Value`] tree. `serde_json` (the sibling stub) formats and parses
//! that tree. The derive macros (`serde_derive`) generate `Serialize` impls
//! with the same field/variant layout real serde would produce (externally
//! tagged enums, objects for named-field structs), so swapping the real
//! crates back in later changes no output shape.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;
pub use value::{Number, Value};

/// Render `self` as a JSON value tree.
///
/// The derive macro (`#[derive(Serialize)]`) implements this for structs and
/// enums; the impls below cover primitives and standard containers.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! ser_tuple {
    ($($idx:tt : $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
ser_tuple!(0: A);
ser_tuple!(0: A, 1: B);
ser_tuple!(0: A, 1: B, 2: C);
ser_tuple!(0: A, 1: B, 2: C, 3: D);

/// Map keys must render as JSON strings.
pub trait SerializeKey {
    fn to_key(&self) -> String;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}
impl SerializeKey for str {
    fn to_key(&self) -> String {
        self.to_string()
    }
}
impl<K: SerializeKey + ?Sized> SerializeKey for &K {
    fn to_key(&self) -> String {
        (**self).to_key()
    }
}
macro_rules! key_int {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String { self.to_string() }
        }
    )*};
}
key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerializeKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output: HashMap iteration order is not stable.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
