//! Offline stand-in for `criterion`.
//!
//! Implements the `Criterion`/`Bencher` API surface the workspace's
//! microbenchmarks use (`bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`, `criterion_main!`) with a simple wall-clock harness:
//! a short warm-up, then timed batches until a time budget is spent, then a
//! per-iteration mean/min report on stdout. No statistics engine, plots, or
//! baselines — enough to compare hot-path costs run over run.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Mirror of criterion's batch sizing hint. The harness sizes batches by
/// time budget, so the variants only gate how many setup calls it amortizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

pub struct Criterion {
    /// Measurement budget per benchmark.
    budget: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(400),
            warmup: Duration::from_millis(100),
        }
    }
}

pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    /// (total measured time, iterations measured)
    measured: Vec<(Duration, u64)>,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            budget: self.budget,
            measured: Vec::new(),
        };
        f(&mut b);
        let total: Duration = b.measured.iter().map(|&(d, _)| d).sum();
        let iters: u64 = b.measured.iter().map(|&(_, n)| n).sum();
        if iters == 0 {
            println!("bench {name}: no iterations measured");
            return self;
        }
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        let min_ns = b
            .measured
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(d, n)| d.as_nanos() as f64 / n as f64)
            .fold(f64::INFINITY, f64::min);
        println!("bench {name}: mean {mean_ns:.1} ns/iter, best-batch {min_ns:.1} ns/iter ({iters} iters)");
        self
    }
}

impl Bencher {
    /// Times `routine` repeatedly; total measured time is the mean basis.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(routine());
        }
        // Measure in growing batches until the budget is spent.
        let mut batch = 1u64;
        let begin = Instant::now();
        while begin.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.measured.push((t0.elapsed(), batch));
            if batch < 1 << 20 {
                batch *= 2;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            let input = setup();
            black_box(routine(input));
        }
        let begin = Instant::now();
        while begin.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.measured.push((t0.elapsed(), 1));
            black_box(out);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
